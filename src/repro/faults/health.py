"""Server health tracking: quarantine and readmission for the serving path.

The service cannot see *why* a server rejects balls — a crash, a stall,
and an honest protocol burn all look the same from the routing side: a
round in which the server received traffic and accepted none of it.
:class:`HealthTracker` turns that per-round observable into a
self-healing loop: servers failing ``fail_streak`` consecutive observed
rounds are quarantined (removed from every client's routable
neighborhood via :meth:`~repro.serve.ServingState.set_quarantine`,
which never strands a client), then probationally readmitted after
``quarantine_rounds`` so a recovered server rejoins the pool.

The tracker is deterministic — pure counter arithmetic, no RNG — and
bounded: at most ``max_quarantine_fraction`` of the fleet is ever out
at once, worst offenders first, so a pathological signal can never
quarantine everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FaultSpecError

__all__ = ["HealthPolicy", "HealthTracker"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs of the quarantine/readmission loop (picklable).

    ``fail_streak``
        Consecutive observed-and-failed rounds before quarantine.  A
        round with no traffic to a server is no evidence and does not
        advance (or reset) its streak.
    ``quarantine_rounds``
        Rounds a quarantined server sits out before probational
        readmission.
    ``max_quarantine_fraction``
        Hard cap on the simultaneously quarantined fraction.
    """

    fail_streak: int = 3
    quarantine_rounds: int = 32
    max_quarantine_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.fail_streak < 1:
            raise FaultSpecError(f"fail_streak must be >= 1; got {self.fail_streak}")
        if self.quarantine_rounds < 1:
            raise FaultSpecError(
                f"quarantine_rounds must be >= 1; got {self.quarantine_rounds}"
            )
        if not (0.0 < self.max_quarantine_fraction <= 1.0):
            raise FaultSpecError(
                "max_quarantine_fraction must be in (0, 1]; "
                f"got {self.max_quarantine_fraction}"
            )


class HealthTracker:
    """Per-server failure streaks → quarantine / readmission decisions."""

    def __init__(self, policy: HealthPolicy, n_servers: int):
        self.policy = policy
        self.n_servers = int(n_servers)
        self.streak = np.zeros(self.n_servers, dtype=np.int64)
        self.in_quarantine = np.zeros(self.n_servers, dtype=bool)
        self.q_clock = np.zeros(self.n_servers, dtype=np.int64)
        self.quarantine_events = 0
        self.readmit_events = 0

    def observe(
        self, received: np.ndarray, accepted: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fold one round's per-server counts; returns ``(to_quarantine,
        to_readmit)`` index arrays (either may be empty).

        ``received`` / ``accepted`` are the round's per-server ball
        counts (length ``n_servers``).  The caller applies the returned
        decisions to its :class:`~repro.serve.ServingState` and reports
        them back via nothing — the tracker assumes its decisions stick.
        """
        pol = self.policy
        inq = self.in_quarantine
        # Streaks advance only on evidence: traffic seen this round.
        seen = received > 0
        failed = seen & (accepted == 0) & ~inq
        healthy = seen & (accepted > 0) & ~inq
        self.streak[failed] += 1
        self.streak[healthy] = 0
        # Quarantine the worst offenders, respecting the fleet-wide cap.
        cand = np.flatnonzero((self.streak >= pol.fail_streak) & ~inq)
        to_q = _EMPTY
        if cand.size:
            cap = int(pol.max_quarantine_fraction * self.n_servers)
            room = cap - int(np.count_nonzero(inq))
            if room > 0:
                if cand.size > room:
                    # Deterministic worst-first: longest streak, then index.
                    order = np.lexsort((cand, -self.streak[cand]))
                    cand = np.sort(cand[order[:room]])
                to_q = cand
                inq[to_q] = True
                self.q_clock[to_q] = 0
                self.streak[to_q] = 0
                self.quarantine_events += int(to_q.size)
        # Probational readmission after the sit-out.
        self.q_clock[inq] += 1
        ready = inq & (self.q_clock >= pol.quarantine_rounds)
        to_r = np.flatnonzero(ready)
        if to_r.size:
            inq[to_r] = False
            self.q_clock[to_r] = 0
            self.streak[to_r] = 0
            self.readmit_events += int(to_r.size)
        return to_q, to_r

    def state(self) -> dict:
        """Checkpointable tracker state."""
        return {
            "streak": self.streak.copy(),
            "in_quarantine": self.in_quarantine.copy(),
            "q_clock": self.q_clock.copy(),
            "quarantine_events": self.quarantine_events,
            "readmit_events": self.readmit_events,
        }

    def set_state(self, state: dict) -> None:
        self.streak[:] = state["streak"]
        self.in_quarantine[:] = state["in_quarantine"]
        self.q_clock[:] = state["q_clock"]
        self.quarantine_events = int(state["quarantine_events"])
        self.readmit_events = int(state["readmit_events"])
