"""On-disk result spool: atomic, checksummed per-grid-point block files.

Layout of a spool directory::

    <dir>/
      journal.jsonl          # header + one line per finished point
      blocks/
        block-00000.npz      # one ResultBlock per grid point
        block-00003.npz      # (written in completion order — any order)

Each block file is one grid point's :class:`~repro.batch.results.
ResultBlock`, serialized via :meth:`~repro.batch.results.ResultBlock.
to_payload` (pickle-free npz), written **atomically** (tmp file +
``os.replace`` after fsync) and **checksummed** (sha256 of the final
file bytes, recorded in the journal's ``block`` line).  A SIGKILL can
therefore never leave a half-written block under its final name, and a
block torn by any other means fails its checksum on read — the
affected point re-runs on resume instead of poisoning the table.

Because the spool holds one file per point and the journal one line
per point, a sweep's full result set never has to exist in RAM at
once: workers stream blocks out as they finish, and consumers can
iterate the blocks back one at a time (:meth:`SpoolReader.iter_blocks`)
or assemble the full :class:`~repro.parallel.aggregate.ResultTable`
when it fits (:meth:`SpoolReader.table`).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from ..batch.results import ResultBlock
from ..errors import SpoolCorruptError
from .journal import JOURNAL_NAME, JournalWriter, read_journal

__all__ = [
    "BLOCKS_DIR",
    "block_filename",
    "write_block",
    "read_block",
    "file_sha256",
    "SpoolReader",
    "failure_block",
    "open_journal",
]

BLOCKS_DIR = "blocks"


def file_sha256(path: str | os.PathLike) -> str:
    """sha256 hex digest of a file's bytes (streamed, constant memory)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def block_filename(point: int) -> str:
    """Spool-relative path of grid point ``point``'s block file."""
    return f"{BLOCKS_DIR}/block-{point:05d}.npz"


def write_block(spool_dir: str | os.PathLike, point: int, block: ResultBlock) -> tuple[str, str]:
    """Atomically write one point's block; returns ``(relpath, sha256)``.

    The payload lands in a pid-tagged tmp file first (fsync'd), then
    ``os.replace``-d to its final name — concurrent writers and crashes
    can race harmlessly; readers only ever see complete files.  The
    checksum is of the final bytes, so the journal entry pins exactly
    what a later read must verify.
    """
    root = Path(spool_dir)
    rel = block_filename(point)
    final = root / rel
    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.parent / f".block-{point:05d}.{os.getpid()}.tmp.npz"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **block.to_payload())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    finally:
        tmp.unlink(missing_ok=True)
    return rel, file_sha256(final)


def read_block(
    spool_dir: str | os.PathLike, rel: str, *, sha256: str | None = None
) -> ResultBlock:
    """Read a spooled block back, verifying its checksum first.

    Raises :class:`~repro.errors.SpoolCorruptError` when the file is
    missing, fails the checksum, or cannot be parsed — the caller (a
    resume) treats that as "this point is not done" and re-runs it.
    """
    path = Path(spool_dir) / rel
    if not path.is_file():
        raise SpoolCorruptError(f"{path}: spooled block missing")
    if sha256 is not None:
        actual = file_sha256(path)
        if actual != sha256:
            raise SpoolCorruptError(
                f"{path}: checksum mismatch (journal {sha256[:12]}…, file {actual[:12]}…)"
            )
    try:
        with np.load(path, allow_pickle=False) as data:
            return ResultBlock.from_payload(data)
    except SpoolCorruptError:
        raise
    except Exception as exc:
        raise SpoolCorruptError(f"{path}: unreadable spooled block: {exc}") from exc


class SpoolReader:
    """Read-side handle on a spool directory: journal + lazy blocks.

    ``completed``/``failures`` split the journal's per-point entries;
    :meth:`iter_blocks` streams completed blocks from disk one at a
    time in grid order (the out-of-core path), :meth:`table` assembles
    everything — completed blocks plus one quarantine row per failed
    point — into a :class:`~repro.parallel.aggregate.ResultTable`.
    """

    def __init__(self, spool_dir: str | os.PathLike):
        self.dir = Path(spool_dir)
        self.header, self._entries = read_journal(self.dir / JOURNAL_NAME)

    @property
    def entries(self) -> dict[int, dict]:
        return dict(self._entries)

    @property
    def completed(self) -> dict[int, dict]:
        return {p: e for p, e in self._entries.items() if e["kind"] == "block"}

    @property
    def failures(self) -> dict[int, dict]:
        return {p: e for p, e in self._entries.items() if e["kind"] == "failure"}

    def verified_completed(self) -> dict[int, dict]:
        """Completed entries whose block files pass their checksums now.

        The resume-time filter: an entry whose file is gone or torn is
        silently dropped (its point re-runs); nothing raises here.
        """
        good: dict[int, dict] = {}
        for p, e in self.completed.items():
            path = self.dir / e["file"]
            if path.is_file() and file_sha256(path) == e["sha256"]:
                good[p] = e
        return good

    def block(self, point: int) -> ResultBlock:
        entry = self._entries.get(point)
        if entry is None or entry["kind"] != "block":
            raise SpoolCorruptError(f"{self.dir}: no completed block for point {point}")
        return read_block(self.dir, entry["file"], sha256=entry["sha256"])

    def iter_blocks(self) -> Iterator[tuple[int, ResultBlock]]:
        """Completed blocks in grid order, loaded one at a time."""
        for p in sorted(self.completed):
            yield p, self.block(p)

    def table(self):
        """The full result table, assembled from disk.

        Completed points contribute their spooled rows; quarantined
        points contribute one structured failure row each (``trial=-1``,
        ``failed=True``, plus kind/error/attempts) so a survived sweep
        still reports *something* for every grid point.
        """
        from ..parallel.aggregate import ResultTable

        blocks = []
        for p in sorted(self._entries):
            entry = self._entries[p]
            if entry["kind"] == "block":
                blocks.append(self.block(p))
            else:
                blocks.append(failure_block(entry))
        return ResultTable.from_blocks(blocks)


def failure_block(entry: Mapping) -> ResultBlock:
    """A quarantined point's journal entry as a one-row structured block."""
    return ResultBlock.from_records(
        dict(entry["point_params"]),
        [-1],
        [
            {
                "failed": True,
                "failure_kind": str(entry["failure_kind"]),
                "error": str(entry["error"]),
                "attempts": int(entry["attempts"]),
            }
        ],
    )


def open_journal(spool_dir: str | os.PathLike) -> JournalWriter:
    """An append-mode :class:`~repro.durable.journal.JournalWriter` for ``dir``."""
    return JournalWriter(Path(spool_dir) / JOURNAL_NAME)
