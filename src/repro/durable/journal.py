"""The durable run's journal: plan fingerprints + a JSONL progress log.

A durable sweep records its progress in ``journal.jsonl`` inside the
spool directory: one **header** line identifying the plan, then one
line per finished grid point — a ``block`` line pointing at the
checksummed block file the point's results were spooled to, or a
``failure`` line quarantining a poison point.  The journal is
append-only and crash-tolerant by construction:

* every line is a self-contained JSON object, flushed and fsync'd
  before the write returns, so a SIGKILL can at worst tear the final
  line — and :func:`read_journal` drops unparseable lines instead of
  refusing the file;
* entries are keyed by grid-point index with last-entry-wins, so a
  point journaled twice (e.g. written, lost to a torn block, re-run on
  resume) resolves to its latest state.

The **fingerprint** is what makes a journal resumable *safely*: a
sha256 over the canonicalized axes of the :class:`~repro.plan.RunPlan`
that can change result *bits* — grid points, trial count, seed lineage,
backend, graph provisioning, the work's name.  Axes the library pins as
bit-identical (kernel choice, thread budget, process count, results
carrier) are deliberately excluded, so a run spooled under
``kernel="numpy"`` can resume under ``kernel="cext"`` — the parity
goldens guarantee the spliced rows match.  A resume whose plan hashes
differently raises :class:`~repro.errors.ResumeMismatchError` rather
than silently splicing two computations into one table.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import SpoolCorruptError

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_VERSION",
    "plan_fingerprint",
    "seed_token",
    "JournalWriter",
    "read_journal",
]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_VERSION = 1


# ---------------------------------------------------------------------------
# Canonicalization + fingerprint
# ---------------------------------------------------------------------------


def _json_sanitize(value):
    """numpy scalars → python scalars, recursively (json won't take np.int64)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_sanitize(v) for v in value]
    return value


def seed_token(seeds) -> object | None:
    """A JSON-stable token for a :class:`~repro.plan.SeedSpec`'s lineage.

    ``None`` means the spec draws OS entropy somewhere — not
    reproducible, so not spoolable (a resumed run could never match the
    interrupted one bit for bit).
    """
    from ..graphs.io import _canonical_seed

    if seeds.seeds is not None:
        toks = [_canonical_seed(s) for s in seeds.seeds]
        if any(t is None for t in toks):
            return None
        # The derivation mode changes bits even for explicit seeds
        # (philox derives counter words from each seed's SeedSequence),
        # so it must be part of the token.  Keep the historical 2-element
        # shape for "pair" so pre-existing spools still resume.
        if seeds.mode == "pair":
            return ["explicit", toks]
        return ["explicit", toks, seeds.mode]
    if seeds.root is None:
        return None
    tok = _canonical_seed(seeds.root)
    if tok is None:
        return None
    return ["root", tok, seeds.mode]


def _graph_token(graph) -> object:
    """Identity token for a pinned topology: CSR content hash when possible."""
    hasher = hashlib.sha256()
    arrays = [
        getattr(graph, name, None)
        for name in ("client_indptr", "client_indices", "server_indptr", "server_indices")
    ]
    if all(a is not None for a in arrays):
        for a in arrays:
            hasher.update(np.ascontiguousarray(a).tobytes())
        return ["csr", hasher.hexdigest()]
    return [
        "meta",
        getattr(graph, "name", "?"),
        int(getattr(graph, "n_clients", -1)),
        int(getattr(graph, "n_servers", -1)),
    ]


def _callable_token(fn) -> str:
    return f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"


def plan_fingerprint(plan) -> str:
    """sha256 hex of the plan axes that determine result bits.

    Included: grid points (values and order), trials, seed lineage and
    mode, backend name (reference and batched condition a point's
    trials on different graph draws), graph provisioning class (pinned
    topology identity / builder identity; ``generate`` and ``cached``
    hash alike — the cache is bit-transparent), and the work's name.

    Excluded on purpose, because the library pins them bit-identical:
    kernel choice, kernel threads, process count, chunk size, dispatch
    mode, and the results carrier — a spool written serially under the
    numpy kernel resumes under a pooled cext run.
    """
    graph = plan.graph
    if graph.mode == "pinned":
        graph_tok = ["pinned", _graph_token(graph.graph)]
    else:
        graph_tok = ["generated"]
    if graph.builder is not None:
        graph_tok.append(_callable_token(graph.builder))
    payload = {
        "v": JOURNAL_VERSION,
        "work": plan.work.name or _callable_token(plan.work.record),
        "points": _json_sanitize(plan.points()),
        "trials": int(plan.trials),
        "seeds": seed_token(plan.seeds),
        "backend": plan.backend.name,
        "graph": graph_tok,
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The JSONL journal
# ---------------------------------------------------------------------------


class JournalWriter:
    """Append-only JSONL journal with per-line durability.

    Each :meth:`append` serializes one entry, writes it with a trailing
    newline, flushes, and fsyncs — after a crash the journal is intact
    up to (at worst) one torn final line.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A SIGKILL can leave the file ending mid-line; terminate that
        # torn tail before appending, or the next entry would merge
        # into it and both lines would be lost to the reader.
        if self.path.exists() and self.path.stat().st_size:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn = fh.read(1) != b"\n"
            if torn:
                with open(self.path, "ab") as fh:
                    fh.write(b"\n")
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, entry: Mapping) -> None:
        line = json.dumps(_json_sanitize(dict(entry)), sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def write_header(
        self, *, fingerprint: str, work: str, points: int, trials: int,
        backend: str, processes: int,
    ) -> None:
        self.append(
            {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "work": work,
                "points": int(points),
                "trials": int(trials),
                "backend": backend,
                "processes": int(processes),
                "created": time.time(),
            }
        )

    def block(self, point: int, *, file: str, sha256: str, rows: int, point_params: Mapping) -> None:
        self.append(
            {
                "kind": "block",
                "point": int(point),
                "file": file,
                "sha256": sha256,
                "rows": int(rows),
                "point_params": dict(point_params),
            }
        )

    def failure(
        self, point: int, *, point_params: Mapping, failure_kind: str,
        error: str, exc_type: str, attempts: int,
    ) -> None:
        self.append(
            {
                "kind": "failure",
                "point": int(point),
                "point_params": dict(point_params),
                "failure_kind": failure_kind,
                "error": error,
                "exc_type": exc_type,
                "attempts": int(attempts),
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str | os.PathLike) -> tuple[dict, dict[int, dict]]:
    """Replay a journal: ``(header, {point index: latest entry})``.

    Tolerates a SIGKILL-torn tail: lines that fail to parse as JSON (or
    lack the entry shape) are skipped with a warning rather than
    failing the resume — the points they would have covered simply
    re-run.  The header is required (first header line wins); a journal
    with none raises :class:`~repro.errors.SpoolCorruptError`.
    """
    path = Path(path)
    header: dict | None = None
    entries: dict[int, dict] = {}
    dropped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                continue
            kind = entry.get("kind") if isinstance(entry, dict) else None
            if kind == "header":
                if header is None:
                    header = entry
            elif kind in ("block", "failure") and isinstance(entry.get("point"), int):
                entries[entry["point"]] = entry
            else:
                dropped += 1
    if dropped:
        warnings.warn(
            f"{path}: skipped {dropped} torn/unrecognized journal line(s); "
            "the affected grid points will re-run",
            stacklevel=2,
        )
    if header is None:
        raise SpoolCorruptError(f"{path}: no journal header found")
    return header, entries
