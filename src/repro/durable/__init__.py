"""Durable plan execution: crash supervision, result spooling, resume.

Three cooperating pieces, layered under :func:`repro.plan.execute`:

* :mod:`~repro.durable.supervisor` — :func:`supervised_map`, the
  future-based replacement for ``ProcessPoolExecutor.map`` that
  survives worker death, retries with capped deterministic backoff,
  enforces per-task timeouts, and quarantines poison tasks;
* :mod:`~repro.durable.journal` — the plan fingerprint and the
  append-only JSONL journal a durable run logs its progress to;
* :mod:`~repro.durable.spool` — atomic, checksummed per-grid-point
  block files plus :class:`SpoolReader`, the lazy read-side handle.

``ResultSpec(sink="spool", dir=...)`` turns them on;
``execute(plan, resume=dir)`` replays a journal and runs only what is
missing, bit-identical to an uninterrupted run.
"""

from .journal import (
    JOURNAL_NAME,
    JournalWriter,
    plan_fingerprint,
    read_journal,
    seed_token,
)
from .spool import (
    SpoolReader,
    failure_block,
    file_sha256,
    open_journal,
    read_block,
    write_block,
)
from .supervisor import RetryPolicy, TaskFailure, supervised_map

__all__ = [
    "JOURNAL_NAME",
    "JournalWriter",
    "plan_fingerprint",
    "read_journal",
    "seed_token",
    "SpoolReader",
    "failure_block",
    "file_sha256",
    "open_journal",
    "read_block",
    "write_block",
    "RetryPolicy",
    "TaskFailure",
    "supervised_map",
]
