"""Crash-supervised process-pool dispatch.

``ProcessPoolExecutor.map`` has all-or-nothing failure semantics: one
worker OOM-killed (or SIGKILL-ed by an operator) raises
``BrokenProcessPool`` in the parent and every completed result of the
map is lost.  :func:`supervised_map` replaces it with a future-based
supervisor in the spirit of MapReduce's re-execution of failed tasks:

* **worker death is survivable** — when the pool breaks, the supervisor
  rebuilds it and requeues the in-flight tasks;
* **failed tasks retry with capped, jittered backoff** — the jitter is
  deterministic per (task, attempt), so reruns behave identically;
* **per-task timeouts** — a task overstaying
  :attr:`RetryPolicy.task_timeout` has its pool killed and is charged
  an attempt (running futures cannot be cancelled any other way);
  innocent co-resident tasks are requeued without blame;
* **poison tasks are identified exactly** — a worker crash breaks the
  whole pool, so blame smears over every in-flight task.  A task whose
  crash count reaches the attempt cap is therefore given one final
  **solo probation** run: if the pool breaks with only that task in
  flight the blame is definitive and it is quarantined as a structured
  :class:`TaskFailure`; if it succeeds, it was an innocent bystander of
  someone else's crashes and its result stands.

Results come back in submission order, exactly like ``pool.map``.  With
``on_result`` the caller observes each task's outcome the moment it
completes (out of submission order) — the hook the durable result
spool uses to persist blocks before the map finishes.

This module deliberately knows nothing about plans, graphs, or result
spools; it is a generic "run these picklable tasks to completion"
primitive, importable from anywhere below :mod:`repro.parallel`.
"""

from __future__ import annotations

import hashlib
import heapq
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import WorkerCrashError

__all__ = ["RetryPolicy", "TaskFailure", "supervised_map"]

#: results[] sentinel for "not finished yet" (None is a legal result).
_UNSET = object()


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a task that did not return a result.

    ``max_attempts`` caps runs per task (first run included).
    ``base_delay``/``max_delay``/``jitter`` shape the capped
    exponential backoff between attempts; the jitter is a deterministic
    hash of (task, attempt), never ambient randomness.
    ``task_timeout`` bounds a single attempt's wall-clock seconds
    (``None`` = unbounded).  ``retry_exceptions`` decides whether an
    ordinary exception raised *by the task function* is retried like a
    crash (durable sweeps want that for e.g. transient I/O) or
    propagated immediately (plain ``map_parallel`` semantics).
    ``on_failure`` picks what happens when attempts are exhausted:
    ``"raise"`` aborts the map, ``"return"`` puts a
    :class:`TaskFailure` in the task's result slot — the quarantine
    row durable sweeps record instead of dying.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    task_timeout: float | None = None
    retry_exceptions: bool = False
    on_failure: str = "raise"

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1; got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1]; got {self.jitter}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive; got {self.task_timeout}")
        if self.on_failure not in ("raise", "return"):
            raise ValueError(f"unknown on_failure {self.on_failure!r}")

    def delay(self, attempts: int, key: object) -> float:
        """Backoff before attempt ``attempts + 1`` of task ``key``.

        Capped exponential, thinned by a *deterministic* jitter (a hash
        of the task key and attempt number) so concurrent requeues
        spread out without consulting ambient RNG state.
        """
        base = min(self.max_delay, self.base_delay * (2.0 ** max(0, attempts - 1)))
        if self.jitter <= 0 or base <= 0:
            return base
        digest = hashlib.sha256(f"{key}:{attempts}".encode()).digest()
        frac = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 - self.jitter * frac)


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retries, as data instead of an exception.

    ``kind`` is ``"crash"`` (killed its worker — confirmed by a solo
    probation run), ``"timeout"``, or ``"exception"`` (the task
    function raised; ``error``/``exc_type`` describe it).  Appears in
    the result slot of :func:`supervised_map` when the policy says
    ``on_failure="return"``; durable sweeps turn it into a quarantined
    failure row.
    """

    index: int
    kind: str
    error: str
    exc_type: str
    attempts: int


def supervised_map(
    fn: Callable,
    items: Sequence,
    *,
    processes: int,
    initializer: Callable | None = None,
    initargs: tuple = (),
    policy: RetryPolicy | None = None,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """``[fn(x) for x in items]`` under crash supervision, order-preserving.

    The drop-in replacement for ``ProcessPoolExecutor.map`` used by
    :func:`repro.parallel.pool.map_parallel`: same contract (picklable
    ``fn``/items, results in submission order), but worker death,
    per-task timeouts, and poison tasks are handled per ``policy``
    instead of aborting the map.  ``on_result(index, result)`` fires in
    the parent as each task completes (completion order); with
    ``on_failure="return"`` it also receives the :class:`TaskFailure`
    of a quarantined task.

    ``processes <= 1`` runs serially in-process (no pool, exact
    tracebacks); the retry policy still applies to ordinary exceptions
    when ``retry_exceptions`` is set.
    """
    items = list(items)
    policy = policy or RetryPolicy()
    policy.validate()
    if not items:
        return []
    if processes <= 1:
        return _serial_map(fn, items, policy, on_result)
    return _Supervisor(fn, items, processes, initializer, initargs, policy, on_result).run()


def _serial_map(fn, items, policy, on_result):
    out = []
    for i, item in enumerate(items):
        attempts = 0
        while True:
            attempts += 1
            try:
                res = fn(item)
            except Exception as exc:
                if policy.retry_exceptions and attempts < policy.max_attempts:
                    time.sleep(policy.delay(attempts, i))
                    continue
                if policy.on_failure == "raise":
                    raise
                res = TaskFailure(i, "exception", str(exc), type(exc).__name__, attempts)
            break
        out.append(res)
        if on_result is not None:
            on_result(i, res)
    return out


class _Supervisor:
    """One :func:`supervised_map` run: scheduler state plus the event loop."""

    def __init__(self, fn, items, processes, initializer, initargs, policy, on_result):
        self.fn = fn
        self.items = items
        self.nproc = processes
        self.initializer = initializer
        self.initargs = initargs
        self.policy = policy
        self.on_result = on_result
        self.results: list = [_UNSET] * len(items)
        self.attempts = [0] * len(items)
        #: min-heap of (ready_time, index) — tasks awaiting (re)submission
        self.ready: list[tuple[float, int]] = [(0.0, i) for i in range(len(items))]
        heapq.heapify(self.ready)
        #: crash suspects awaiting a solo probation run
        self.suspects: deque[int] = deque()
        #: index of the task currently on solo probation, if any
        self.probation: int | None = None
        self.pool: ProcessPoolExecutor | None = None

    # -- pool lifecycle ----------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.nproc,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _discard_pool(self, kill: bool = False) -> None:
        if self.pool is None:
            return
        if kill:
            # Running futures cannot be cancelled; killing the worker
            # processes is the only way to enforce a task timeout.
            procs = getattr(self.pool, "_processes", None) or {}
            for p in list(procs.values()):
                try:
                    p.kill()
                except Exception:
                    pass
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None

    # -- scheduling --------------------------------------------------------

    def _submit(self, idx: int, inflight: dict) -> None:
        fut = self.pool.submit(self.fn, self.items[idx])
        inflight[fut] = (idx, time.monotonic())

    def _fill(self, inflight: dict) -> None:
        """Top the pool up: probation solo run first, else ready tasks.

        The window is one task per worker — in-flight tasks are
        *running* tasks, which keeps crash blame as narrow as the pool
        allows and makes the per-task timeout clock honest.
        """
        if self.probation is not None:
            return
        if self.suspects:
            if inflight:
                return  # drain, then run the suspect alone
            self.probation = self.suspects.popleft()
            self._submit(self.probation, inflight)
            return
        now = time.monotonic()
        while self.ready and len(inflight) < self.nproc:
            if self.ready[0][0] > now:
                break
            _, idx = heapq.heappop(self.ready)
            self._submit(idx, inflight)

    def _requeue(self, idx: int, *, blamed: bool) -> None:
        if blamed:
            self.attempts[idx] += 1
            if self.attempts[idx] >= self.policy.max_attempts:
                # Blame smears across co-resident tasks when a pool
                # breaks; confirm with one solo run before quarantining.
                self.suspects.append(idx)
                return
            delay = self.policy.delay(self.attempts[idx], idx)
        else:
            delay = 0.0
        heapq.heappush(self.ready, (time.monotonic() + delay, idx))

    def _finish(self, idx: int, result) -> None:
        if self.probation == idx:
            self.probation = None
        self.results[idx] = result
        if self.on_result is not None:
            self.on_result(idx, result)

    def _quarantine(self, idx: int, kind: str, error: str, exc_type: str) -> None:
        if self.probation == idx:
            self.probation = None
        if self.policy.on_failure == "raise":
            raise WorkerCrashError(
                f"task {idx} {error} after {self.attempts[idx]} attempt(s)"
            )
        self._finish(
            idx, TaskFailure(idx, kind, error, exc_type, self.attempts[idx])
        )

    # -- event handlers ----------------------------------------------------

    def _task_exception(self, idx: int, exc: Exception) -> None:
        if self.probation == idx:
            self.probation = None
        self.attempts[idx] += 1
        if not self.policy.retry_exceptions:
            if self.policy.on_failure == "raise":
                raise exc
            self._finish(
                idx,
                TaskFailure(idx, "exception", str(exc), type(exc).__name__, self.attempts[idx]),
            )
            return
        if self.attempts[idx] >= self.policy.max_attempts:
            self._finish(
                idx,
                TaskFailure(idx, "exception", str(exc), type(exc).__name__, self.attempts[idx]),
            )
            return
        heapq.heappush(
            self.ready,
            (time.monotonic() + self.policy.delay(self.attempts[idx], idx), idx),
        )

    def _handle_broken(self, idx: int) -> None:
        """One in-flight task of a broken pool: quarantine or requeue."""
        if self.probation == idx:
            # Solo run, so the blame is definitive: this task kills its
            # worker every time it runs.
            self.attempts[idx] += 1
            self._quarantine(idx, "crash", "crashed its worker process", "BrokenProcessPool")
            return
        self._requeue(idx, blamed=True)

    def _handle_timeouts(self, inflight: dict) -> None:
        if self.policy.task_timeout is None:
            return
        now = time.monotonic()
        overdue = {
            idx for _f, (idx, t0) in zip(inflight, inflight.values())
            if now - t0 >= self.policy.task_timeout
        }
        if not overdue:
            return
        # A running future cannot be cancelled: kill the pool, charge the
        # overdue tasks an attempt, requeue the innocents blame-free.
        self._discard_pool(kill=True)
        for _fut, (idx, _t0) in list(inflight.items()):
            if idx not in overdue:
                if self.probation == idx:
                    self.probation = None
                self._requeue(idx, blamed=False)
                continue
            self.attempts[idx] += 1
            if self.probation == idx or self.attempts[idx] >= self.policy.max_attempts:
                self._quarantine(
                    idx,
                    "timeout",
                    f"exceeded the {self.policy.task_timeout}s task timeout",
                    "TimeoutError",
                )
            else:
                heapq.heappush(
                    self.ready,
                    (time.monotonic() + self.policy.delay(self.attempts[idx], idx), idx),
                )
        inflight.clear()
        self.pool = self._new_pool()

    # -- the loop ----------------------------------------------------------

    def _wait_timeout(self, inflight: dict) -> float | None:
        now = time.monotonic()
        deadlines = []
        if self.policy.task_timeout is not None:
            deadlines += [
                t0 + self.policy.task_timeout - now for (_i, t0) in inflight.values()
            ]
        if (
            self.ready
            and self.probation is None
            and not self.suspects
            and len(inflight) < self.nproc
        ):
            deadlines.append(self.ready[0][0] - now)
        if not deadlines:
            return None
        return max(0.01, min(deadlines))

    def run(self) -> list:
        self.pool = self._new_pool()
        inflight: dict[Future, tuple[int, float]] = {}
        try:
            while self.ready or self.suspects or inflight or self.probation is not None:
                self._fill(inflight)
                if not inflight:
                    if self.ready:  # everything pending is in backoff
                        time.sleep(max(0.0, self.ready[0][0] - time.monotonic()) + 0.001)
                    continue
                done, _ = wait(
                    list(inflight), timeout=self._wait_timeout(inflight),
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    self._handle_timeouts(inflight)
                    continue
                broken = False
                for fut in done:
                    idx, _t0 = inflight.pop(fut)
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        self._handle_broken(idx)
                    except Exception as exc:
                        self._task_exception(idx, exc)
                    else:
                        self._finish(idx, result)
                if broken:
                    # The rest of the in-flight set died with the pool.
                    for _fut, (idx, _t0) in list(inflight.items()):
                        self._handle_broken(idx)
                    inflight.clear()
                    self._discard_pool()
                    self.pool = self._new_pool()
        finally:
            self._discard_pool()
        assert not any(r is _UNSET for r in self.results), "supervisor lost a task"
        return self.results
