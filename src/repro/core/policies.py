"""Server-side decision policies: SAER (burned) and RAES (saturated).

Both protocols share the client side (re-submit every alive ball to a
uniform random neighbor each round) and differ only in Phase 2, the
server rule.  The engine is therefore generic over a ``ServerPolicy``:

* :class:`SaerPolicy` — Algorithm 1 / Definition 3.  A server counts
  every ball it has ever *received* (accepted or not); the round whose
  batch pushes that count above ``⌊c·d⌋`` is rejected wholesale and the
  server is **burned** forever after.
* :class:`RaesPolicy` — Becchetti et al.'s rule.  A server rejects a
  round's batch iff *accepting* it would push its accepted load above
  ``⌊c·d⌋``; there is no permanent state, so a saturated server can
  accept again in a later, lighter round.

Both guarantee max load ≤ ``⌊c·d⌋`` by construction; the engine's tests
assert it as an invariant anyway.
"""

from __future__ import annotations

import numpy as np

from ..errors import ProtocolConfigError

__all__ = ["ServerPolicy", "SaerPolicy", "RaesPolicy"]


class ServerPolicy:
    """Interface for Phase-2 server decision rules.

    A policy owns all per-server state.  ``decide`` is called once per
    round with the vector of balls received by each server and must
    return a boolean accept mask; the policy updates its own state
    (loads, burned flags, …) as a side effect.
    """

    name: str = "abstract"

    def __init__(self, n_servers: int, capacity: int):
        if n_servers < 0:
            raise ProtocolConfigError("n_servers must be non-negative")
        if capacity < 1:
            raise ProtocolConfigError(f"capacity must be >= 1; got {capacity}")
        self.n_servers = n_servers
        self.capacity = capacity
        self.loads = np.zeros(n_servers, dtype=np.int64)

    def decide(self, received: np.ndarray) -> np.ndarray:
        """Given per-server received counts, return the accept mask."""
        raise NotImplementedError

    def blocked_mask(self) -> np.ndarray:
        """Servers that would reject *any* non-empty batch right now.

        For SAER this is the burned set (Definition 3); for RAES it is
        the set of servers already at full capacity.  Used by the metric
        layer to compute ``S_t``.
        """
        raise NotImplementedError

    @property
    def max_load(self) -> int:
        return int(self.loads.max()) if self.n_servers else 0


class SaerPolicy(ServerPolicy):
    """SAER: *Stop Accepting if Exceeding Requests* (Algorithm 1).

    State:

    * ``cum_received`` — ``Σ_{i≤t} r_i(u)``, counting every received
      ball regardless of acceptance (this is what Definition 3 burns on),
    * ``burned`` — permanent rejection flag,
    * ``loads`` — accepted balls (final assignment loads).
    """

    name = "saer"

    def __init__(self, n_servers: int, capacity: int):
        super().__init__(n_servers, capacity)
        self.cum_received = np.zeros(n_servers, dtype=np.int64)
        self.burned = np.zeros(n_servers, dtype=bool)
        self.newly_burned_last_round = 0

    def decide(self, received: np.ndarray) -> np.ndarray:
        # Burned servers keep receiving (clients are non-adaptive) but the
        # count no longer matters; we still accumulate it so traces show
        # the true r_t(u).
        self.cum_received += received
        over = self.cum_received > self.capacity
        newly = over & ~self.burned
        accept = ~self.burned & ~over
        self.burned |= newly
        self.newly_burned_last_round = int(np.count_nonzero(newly))
        self.loads[accept] += received[accept]
        return accept

    def blocked_mask(self) -> np.ndarray:
        return self.burned.copy()


class RaesPolicy(ServerPolicy):
    """RAES: *Request a link, then Accept if Enough Space* [4].

    A server is *saturated* in a round when accepting that round's batch
    would exceed capacity; it rejects the whole batch but keeps no other
    state, so saturation is per-round, not permanent.
    """

    name = "raes"

    def __init__(self, n_servers: int, capacity: int):
        super().__init__(n_servers, capacity)
        self.saturated_rounds = np.zeros(n_servers, dtype=np.int64)
        self.newly_burned_last_round = 0  # kept for interface symmetry; counts saturation events

    def decide(self, received: np.ndarray) -> np.ndarray:
        accept = self.loads + received <= self.capacity
        rejected = ~accept
        self.saturated_rounds[rejected] += 1
        self.newly_burned_last_round = int(np.count_nonzero(rejected & (received > 0)))
        self.loads[accept] += received[accept]
        return accept

    def blocked_mask(self) -> np.ndarray:
        # A full server rejects any non-empty batch; servers below
        # capacity may still reject large batches, but "blocked" in the
        # S_t sense means unconditionally rejecting.
        return self.loads >= self.capacity
