"""Per-round measurement of the quantities driving the paper's proof.

The analysis of Theorem 1 tracks, for each round ``t``:

* ``r_t(u)`` — balls received by server ``u`` (Definition 3),
* ``r_t(N(v)) = Σ_{u∈N(v)} r_t(u)`` and its max over clients ``r_t``
  (Definition 5),
* ``S_t(v)`` — fraction of burned servers in ``N(v)``, and
  ``S_t = max_v S_t(v)`` (Definition 3),
* ``K_t(v) = (1/(c·d·Δ_v)) Σ_{i≤t} r_i(N(v))`` and ``K_t = max_v K_t(v)``
  (Definition 6 / eq. 26), the proxy satisfying ``S_t ≤ K_t``.

These are exactly the series the Stage-I/Stage-II experiments (E4, E10,
E11) need.  Computing them costs one sparse matvec per round, so tracing
is opt-in via :class:`TraceLevel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..graphs.bipartite import BipartiteGraph
    from .config import ProtocolParams

__all__ = ["TraceLevel", "Trace"]


class TraceLevel(enum.Enum):
    """How much to record per round.

    * ``NONE`` — nothing (fastest; completion/work/loads still reported).
    * ``BASIC`` — scalar counters: alive balls, requests, acceptances,
      newly blocked servers, cumulative work.
    * ``FULL`` — BASIC plus the proof quantities ``S_t``, ``K_t``,
      ``max_v r_t(N(v))`` and ``max_u r_t(u)`` (one sparse matvec/round).
    """

    NONE = 0
    BASIC = 1
    FULL = 2


@dataclass
class Trace:
    """Per-round series recorded during a protocol run.

    All lists have one entry per executed round; :meth:`finalize` freezes
    them into NumPy arrays (idempotent).  ``alive_before`` is the number
    of unassigned balls at the *start* of the round, so
    ``alive_before[0] == Σ_v demand_v``.
    """

    level: TraceLevel
    alive_before: list[int] = field(default_factory=list)
    requests: list[int] = field(default_factory=list)
    accepted: list[int] = field(default_factory=list)
    newly_blocked: list[int] = field(default_factory=list)
    blocked_total: list[int] = field(default_factory=list)
    work_cum: list[int] = field(default_factory=list)
    # FULL level only:
    s_t: list[float] = field(default_factory=list)
    k_t: list[float] = field(default_factory=list)
    r_neigh_max: list[int] = field(default_factory=list)
    r_server_max: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._adj = None  # scipy CSR client×server, lazily bound
        self._cum_r_neigh = None  # Σ_{i≤t} r_i(N(v)) per client
        self._inv_deg = None  # 1/Δ_v per client (inf-guarded)
        self._cd = 1.0  # c·d normalizer for K_t
        self._finalized = False

    # -- recording ---------------------------------------------------------

    def bind(self, graph: "BipartiteGraph", params: "ProtocolParams") -> None:
        """Prepare FULL-level machinery for ``graph`` (no-op otherwise)."""
        if self.level is not TraceLevel.FULL:
            return
        self._adj = graph.to_scipy()
        self._cum_r_neigh = np.zeros(graph.n_clients, dtype=np.float64)
        deg = graph.client_degrees.astype(np.float64)
        with np.errstate(divide="ignore"):
            self._inv_deg = np.where(deg > 0, 1.0 / deg, 0.0)
        self._cd = float(params.c * params.d)

    def record_round(
        self,
        *,
        alive_before: int,
        requests: int,
        accepted: int,
        newly_blocked: int,
        blocked_mask: np.ndarray | None,
        received: np.ndarray | None,
        work_cum: int,
    ) -> None:
        """Record one executed round; FULL fields need the server vectors."""
        if self.level is TraceLevel.NONE:
            return
        self.alive_before.append(alive_before)
        self.requests.append(requests)
        self.accepted.append(accepted)
        self.newly_blocked.append(newly_blocked)
        self.blocked_total.append(int(blocked_mask.sum()) if blocked_mask is not None else 0)
        self.work_cum.append(work_cum)
        if self.level is TraceLevel.FULL:
            assert self._adj is not None, "Trace.bind() was not called"
            r_neigh = self._adj @ received.astype(np.float64)
            self._cum_r_neigh += r_neigh
            blocked_in_neigh = self._adj @ blocked_mask.astype(np.float64)
            s_v = blocked_in_neigh * self._inv_deg
            self.s_t.append(float(s_v.max()) if s_v.size else 0.0)
            k_v = self._cum_r_neigh * self._inv_deg / self._cd
            self.k_t.append(float(k_v.max()) if k_v.size else 0.0)
            self.r_neigh_max.append(int(r_neigh.max()) if r_neigh.size else 0)
            self.r_server_max.append(int(received.max()) if received.size else 0)

    # -- finalized views ----------------------------------------------------

    def finalize(self) -> "Trace":
        """Freeze all series into arrays (idempotent); returns self."""
        if self._finalized:
            return self
        for name in (
            "alive_before",
            "requests",
            "accepted",
            "newly_blocked",
            "blocked_total",
            "work_cum",
            "r_neigh_max",
            "r_server_max",
        ):
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.int64))
        for name in ("s_t", "k_t"):
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.float64))
        self._finalized = True
        return self

    @property
    def n_rounds(self) -> int:
        return len(self.alive_before)

    def max_s_t(self) -> float:
        """``max_t S_t`` over the run (the quantity Lemma 4 bounds by 1/2)."""
        arr = np.asarray(self.s_t, dtype=np.float64)
        return float(arr.max()) if arr.size else 0.0

    def max_k_t(self) -> float:
        """``max_t K_t`` over the run (``S_t ≤ K_t`` per eq. 3)."""
        arr = np.asarray(self.k_t, dtype=np.float64)
        return float(arr.max()) if arr.size else 0.0

    def alive_decay_ratios(self) -> np.ndarray:
        """Per-round ``alive(t+1)/alive(t)`` ratios (§3.2's 4/5 factor)."""
        a = np.asarray(self.alive_before, dtype=np.float64)
        if a.size < 2:
            return np.empty(0, dtype=np.float64)
        prev = a[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(prev > 0, a[1:] / prev, 0.0)
        return out

    def as_dict(self) -> dict:
        """Plain-dict export (arrays as lists) for JSON/tables."""
        self.finalize()
        out = {
            "level": self.level.name,
            "alive_before": np.asarray(self.alive_before).tolist(),
            "requests": np.asarray(self.requests).tolist(),
            "accepted": np.asarray(self.accepted).tolist(),
            "newly_blocked": np.asarray(self.newly_blocked).tolist(),
            "blocked_total": np.asarray(self.blocked_total).tolist(),
            "work_cum": np.asarray(self.work_cum).tolist(),
        }
        if self.level is TraceLevel.FULL:
            out.update(
                s_t=np.asarray(self.s_t).tolist(),
                k_t=np.asarray(self.k_t).tolist(),
                r_neigh_max=np.asarray(self.r_neigh_max).tolist(),
                r_server_max=np.asarray(self.r_server_max).tolist(),
            )
        return out
