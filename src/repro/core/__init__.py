"""The paper's primary contribution: the SAER protocol (and RAES sibling).

Public surface:

* :func:`run_saer` / :func:`run_raes` — one protocol execution on a
  graph, returning a :class:`~repro.core.results.RunResult`.
* :class:`ProtocolParams` — the ``(c, d)`` pair of Algorithm 1.
* :class:`SaerPolicy` / :class:`RaesPolicy` — server-side decision rules
  (burned vs saturated semantics), usable with the generic engine.
* :func:`run_protocol` — the generic synchronous round engine.
* :func:`run_coupled` — SAER and RAES on one shared random tape
  (slot-level coupling, Corollary 2).
* :class:`TraceLevel` and :class:`Trace` — per-round measurement of the
  proof quantities ``S_t``, ``K_t``, ``r_t(N(v))``.
"""

from .config import ProtocolParams, RunOptions
from .coupling import CoupledResult, run_coupled
from .engine import run_protocol, run_raes, run_saer
from .metrics import Trace, TraceLevel
from .policies import RaesPolicy, SaerPolicy, ServerPolicy
from .results import RunResult
from .variants import VariantResult, run_saer_with_backoff, run_saer_with_retry_budget

__all__ = [
    "ProtocolParams",
    "RunOptions",
    "SaerPolicy",
    "RaesPolicy",
    "ServerPolicy",
    "run_protocol",
    "run_saer",
    "run_raes",
    "run_coupled",
    "CoupledResult",
    "Trace",
    "TraceLevel",
    "RunResult",
    "VariantResult",
    "run_saer_with_retry_budget",
    "run_saer_with_backoff",
]
