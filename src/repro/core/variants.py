"""Client-side protocol variants (§4: "our protocol, or simple variants of it").

The paper's conclusion invites the study of simple SAER variants.  Two
natural ones change only the *client* behaviour (the server rule — and
hence the load cap — is untouched):

* :func:`run_saer_with_retry_budget` — a ball gives up after ``budget``
  rejections (client impatience / request deadlines).  Termination is
  then guaranteed within ``budget·round-cap``; the price is *dropped*
  balls, which the result reports.  ``budget=None`` recovers plain SAER.
* :func:`run_saer_with_backoff` — after a rejection, a ball re-submits
  each round only with probability ``retry_prob`` (randomized backoff).
  This spreads retries over time, lowering per-round collision mass at
  the cost of longer completion; ``retry_prob=1.0`` recovers plain SAER.

Both consume the :class:`~repro.rng.RandomTape` in a documented order
(per round: first one coin per backlogged ball — backoff only — then one
destination uniform per sending ball, client-ascending / slot-ascending)
so runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import RandomTape
from .config import ProtocolParams, RunOptions
from .engine import _resolve_demands, draw_destinations
from .policies import SaerPolicy
from .results import RunResult

__all__ = ["VariantResult", "run_saer_with_retry_budget", "run_saer_with_backoff"]


@dataclass
class VariantResult:
    """A :class:`RunResult` plus the variant-specific counters."""

    run: RunResult
    dropped_balls: int = 0
    deferred_sends: int = 0  # backoff: ball-rounds spent waiting

    def summary(self) -> dict:
        out = self.run.summary()
        out["dropped_balls"] = self.dropped_balls
        out["deferred_sends"] = self.deferred_sends
        return out


def _setup(graph, c, d, seed, tape, demands):
    if tape is not None and seed is not None:
        raise ProtocolConfigError("pass either seed or tape, not both")
    params = ProtocolParams(c=c, d=d)
    dem = _resolve_demands(graph, d, demands)
    tp = tape if tape is not None else RandomTape(seed)
    slot_client = np.repeat(np.arange(graph.n_clients, dtype=np.int64), dem)
    return params, dem, tp, slot_client


def _make_result(
    graph: BipartiteGraph,
    params: ProtocolParams,
    pol: SaerPolicy,
    *,
    protocol: str,
    rounds: int,
    work: int,
    total: int,
    assigned: int,
    settled: bool,
    opts: RunOptions,
    seed,
) -> RunResult:
    return RunResult(
        protocol=protocol,
        graph_name=graph.name,
        n_clients=graph.n_clients,
        n_servers=graph.n_servers,
        params=params,
        completed=settled,
        rounds=rounds,
        work=work,
        total_balls=total,
        assigned_balls=assigned,
        alive_balls=total - assigned,
        max_load=pol.max_load,
        blocked_servers=int(pol.blocked_mask().sum()),
        loads=pol.loads.copy() if opts.record_loads else None,
        trace=None,
        seed_info=repr(seed) if seed is not None else "tape",
    )


def run_saer_with_retry_budget(
    graph: BipartiteGraph,
    c: float,
    d: int,
    budget: int | None,
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
) -> VariantResult:
    """SAER where each ball tolerates at most ``budget`` rejections.

    A ball whose rejection count reaches ``budget`` is *dropped* (the
    client stops re-submitting it).  ``completed`` in the returned run
    means "no ball still alive" — i.e. every ball was either assigned or
    dropped; the drop count is in :attr:`VariantResult.dropped_balls`.
    """
    if budget is not None and budget < 1:
        raise ProtocolConfigError("budget must be >= 1 (or None for unlimited)")
    opts = options or RunOptions()
    params, dem, tp, slot_client = _setup(graph, c, d, seed, tape, demands)
    total = int(dem.sum())
    n_s = graph.n_servers
    pol = SaerPolicy(n_s, params.capacity)
    alive = np.ones(total, dtype=bool)
    rejections = np.zeros(total, dtype=np.int64)
    cap = opts.cap_for(max(graph.n_clients, n_s))
    assigned = 0
    dropped = 0
    work = 0
    rounds = 0
    while alive.any() and rounds < cap:
        rounds += 1
        send_idx = np.flatnonzero(alive)
        senders = slot_client[send_idx]
        u = tp.draw(senders.size)
        dest = draw_destinations(graph, senders, u)
        received = np.bincount(dest, minlength=n_s)
        accept = pol.decide(received)
        ok = accept[dest]
        alive[send_idx[ok]] = False
        assigned += int(np.count_nonzero(ok))
        work += 2 * senders.size
        rejected_slots = send_idx[~ok]
        rejections[rejected_slots] += 1
        if budget is not None:
            give_up = rejected_slots[rejections[rejected_slots] >= budget]
            if give_up.size:
                alive[give_up] = False
                dropped += int(give_up.size)
    settled = not alive.any()
    run = _make_result(
        graph,
        params,
        pol,
        protocol="saer+budget",
        rounds=rounds,
        work=work,
        total=total,
        assigned=assigned,
        settled=settled,
        opts=opts,
        seed=seed,
    )
    return VariantResult(run=run, dropped_balls=dropped)


def run_saer_with_backoff(
    graph: BipartiteGraph,
    c: float,
    d: int,
    retry_prob: float,
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
) -> VariantResult:
    """SAER with randomized retry backoff.

    Fresh balls always submit in their first round; a previously-rejected
    ball re-submits each round independently with probability
    ``retry_prob`` and otherwise waits.  ``retry_prob=1.0`` is plain
    SAER (and consumes the tape identically to the engine's fast path
    apart from the per-ball coin draws).
    """
    if not (0.0 < retry_prob <= 1.0):
        raise ProtocolConfigError("retry_prob must be in (0, 1]")
    opts = options or RunOptions()
    params, dem, tp, slot_client = _setup(graph, c, d, seed, tape, demands)
    total = int(dem.sum())
    n_s = graph.n_servers
    pol = SaerPolicy(n_s, params.capacity)
    alive = np.ones(total, dtype=bool)
    backlogged = np.zeros(total, dtype=bool)  # rejected at least once
    cap = opts.cap_for(max(graph.n_clients, n_s))
    assigned = 0
    deferred = 0
    work = 0
    rounds = 0
    while alive.any() and rounds < cap:
        rounds += 1
        # Coin phase: backlogged alive balls flip a retry coin (canonical
        # order: ascending slot index).
        candidates = np.flatnonzero(alive)
        is_back = backlogged[candidates]
        back_idx = candidates[is_back]
        coins = tp.draw(back_idx.size)
        retry = coins < retry_prob
        sending = np.concatenate([candidates[~is_back], back_idx[retry]])
        sending.sort()
        deferred += int(back_idx.size - np.count_nonzero(retry))
        if sending.size == 0:
            continue
        senders = slot_client[sending]
        u = tp.draw(senders.size)
        dest = draw_destinations(graph, senders, u)
        received = np.bincount(dest, minlength=n_s)
        accept = pol.decide(received)
        ok = accept[dest]
        alive[sending[ok]] = False
        backlogged[sending[~ok]] = True
        assigned += int(np.count_nonzero(ok))
        work += 2 * senders.size
    run = _make_result(
        graph,
        params,
        pol,
        protocol="saer+backoff",
        rounds=rounds,
        work=work,
        total=total,
        assigned=assigned,
        settled=not alive.any(),
        opts=opts,
        seed=seed,
    )
    return VariantResult(run=run, deferred_sends=deferred)
