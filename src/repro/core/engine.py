"""The synchronous round engine implementing model M (§2.1), vectorized.

One round = Phase 1 (every client submits each alive ball to a uniform
random neighbor, with replacement) + Phase 2 (each server applies its
policy to the batch it received and answers accept/reject).  The engine
is generic over the server policy, so SAER and RAES share all of this.

Vectorization strategy (per the HPC guide: no per-ball Python loops):

* senders for the round: ``np.repeat(arange(n_clients), alive)``;
* destinations: one uniform per ball, mapped to the sender's CSR
  neighbor row via ``indices[indptr[v] + ⌊u·Δ_v⌋]``;
* per-server batch sizes: ``np.bincount``;
* per-ball accept bit: a single gather ``accept_mask[dest]``.

Randomness is a :class:`~repro.rng.RandomTape` consumed in the canonical
order (round-major, client index, ball slot), so the agent simulator in
:mod:`repro.agents` can replay identical executions — that equivalence
is tested, which is what lets this fast path *be* the reference
implementation of model M.

Two draw modes:

* ``slot_mode=False`` (default): only alive balls consume tape values —
  cheapest, used for all performance work.
* ``slot_mode=True``: every ball slot consumes one value per round
  whether alive or not, mirroring the paper's definition of
  ``z_t^(i)(v,u)`` "at every round … even when the corresponding request
  has already been accepted".  This is the mode that makes the SAER/RAES
  coupling of Corollary 2 exact (see :mod:`repro.core.coupling`).
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from ..errors import GraphValidationError, NonTerminationError, ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import RandomTape
from .config import ProtocolParams, RunOptions
from .metrics import Trace, TraceLevel
from .policies import RaesPolicy, SaerPolicy, ServerPolicy
from .results import RunResult

__all__ = [
    "run_protocol",
    "run_saer",
    "run_raes",
    "draw_destinations",
    "draw_destinations_distinct",
]

PolicyLike = Union[str, ServerPolicy, Callable[[int, int], ServerPolicy]]

_POLICY_REGISTRY: dict[str, Callable[[int, int], ServerPolicy]] = {
    "saer": SaerPolicy,
    "raes": RaesPolicy,
}


def _make_policy(policy: PolicyLike, n_servers: int, capacity: int) -> ServerPolicy:
    if isinstance(policy, ServerPolicy):
        return policy
    if isinstance(policy, str):
        try:
            factory = _POLICY_REGISTRY[policy.lower()]
        except KeyError:
            raise ProtocolConfigError(
                f"unknown policy {policy!r}; known: {sorted(_POLICY_REGISTRY)}"
            ) from None
        return factory(n_servers, capacity)
    return policy(n_servers, capacity)


def _resolve_demands(graph: BipartiteGraph, d: int, demands) -> np.ndarray:
    """Per-client ball counts; defaults to ``d`` everywhere (Algorithm 1).

    The paper allows "*at most* d" balls per client; pass ``demands`` to
    exercise that general case.
    """
    if demands is None:
        dem = np.full(graph.n_clients, d, dtype=np.int64)
    else:
        dem = np.asarray(demands, dtype=np.int64)
        if dem.shape != (graph.n_clients,):
            raise ProtocolConfigError(
                f"demands must have shape ({graph.n_clients},); got {dem.shape}"
            )
        if np.any(dem < 0) or np.any(dem > d):
            raise ProtocolConfigError("demands must lie in [0, d]")
    starving = (graph.client_degrees == 0) & (dem > 0)
    if np.any(starving):
        raise GraphValidationError(
            f"{int(starving.sum())} clients have balls but no neighbors; "
            "the protocol could never terminate"
        )
    return dem


def draw_destinations(
    graph: BipartiteGraph,
    senders: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Map per-ball uniforms to server destinations.

    Ball ``i`` from client ``senders[i]`` with uniform ``u`` goes to
    ``N(senders[i])[⌊u·Δ⌋]`` — the with-replacement uniform choice of
    Algorithm 1 line 3.  The ``min`` guards the (measure-zero in theory,
    possible in floating point) case ``⌊u·Δ⌋ == Δ``.
    """
    deg = graph.client_degrees[senders]
    offsets = np.minimum((uniforms * deg).astype(np.int64), deg - 1)
    return graph.client_indices[graph.client_indptr[senders] + offsets]


def _draw_destinations_distinct_loop(
    graph: BipartiteGraph,
    clients: np.ndarray,
    counts: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Per-client-loop reference for :func:`draw_destinations_distinct`.

    Kept as the executable specification of the tape semantics: the
    vectorized implementation must be bit-identical to this under
    matching uniforms (asserted in ``tests/test_ablations.py``).
    """
    total = int(counts.sum())
    dest = np.empty(total, dtype=np.int64)
    if uniforms.size != total:
        raise ValueError(f"need {total} uniforms, got {uniforms.size}")
    pos = 0
    for v, k in zip(clients.tolist(), counts.tolist()):
        if k == 0:
            continue
        row = graph.neighbors_of_client(v)
        deg = row.size
        idx = np.arange(deg, dtype=np.int64)
        for j in range(k):
            jj = j % deg
            if jj == 0 and j > 0:
                idx = np.arange(deg, dtype=np.int64)
            u = float(uniforms[pos + j])
            pick = jj + min(int(u * (deg - jj)), deg - jj - 1)
            idx[jj], idx[pick] = idx[pick], idx[jj]
            dest[pos + j] = row[idx[jj]]
        pos += k
    return dest


def draw_destinations_distinct(
    graph: BipartiteGraph,
    clients: np.ndarray,
    counts: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """Per-client *distinct* destinations (the ablation A3 variant).

    Algorithm 1 samples with replacement; this variant gives each client
    a partial Fisher–Yates draw over its neighbor row, so a round's
    requests from one client go to distinct servers (wrapping to a fresh
    pass if a client has more alive balls than neighbors).  Consumes
    exactly one uniform per ball, in the same canonical order as
    :func:`draw_destinations`.

    Implemented as a *segmented* partial Fisher–Yates: the per-ball loop
    runs over ball slots ``j < max(counts)`` only (``counts`` are
    bounded by the demand ``d``), with every client advanced in one
    whole-array step per slot.  Bit-identical to the per-client
    reference :func:`_draw_destinations_distinct_loop` under matching
    uniforms — the swap state lives in a ``(clients, max_degree)``
    index matrix, so memory is ``O(active_clients · Δ_max)``.
    """
    clients = np.asarray(clients, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if uniforms.size != total:
        raise ValueError(f"need {total} uniforms, got {uniforms.size}")
    if total == 0:
        return np.empty(0, dtype=np.int64)
    degs = graph.client_degrees[clients].astype(np.int64)
    if np.any((degs == 0) & (counts > 0)):
        # The reference loop dies on `j % 0` here; fail loudly instead of
        # letting numpy's 0-degree modulo read another client's row.
        raise GraphValidationError("a client with no neighbors cannot draw destinations")
    deg_max = int(degs.max())
    starts = np.cumsum(counts) - counts
    idx = np.broadcast_to(np.arange(deg_max, dtype=np.int64), (clients.size, deg_max)).copy()
    dest = np.empty(total, dtype=np.int64)
    row_base = graph.client_indptr[clients]
    for j in range(int(counts.max())):
        act = np.flatnonzero(counts > j)
        dj = degs[act]
        jj = j % dj
        if j:
            wrap = act[jj == 0]
            if wrap.size:  # fresh Fisher–Yates pass for wrapped clients
                idx[wrap] = np.arange(deg_max, dtype=np.int64)
        u = uniforms[starts[act] + j]
        span = dj - jj
        pick = jj + np.minimum((u * span).astype(np.int64), span - 1)
        a = idx[act, jj]
        b = idx[act, pick]
        idx[act, pick] = a
        idx[act, jj] = b
        dest[starts[act] + j] = graph.client_indices[row_base[act] + b]
    return dest


def run_protocol(
    graph: BipartiteGraph,
    params: ProtocolParams,
    policy: PolicyLike = "saer",
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
    trace: TraceLevel = TraceLevel.NONE,
    slot_mode: bool = False,
    sampling: str = "with_replacement",
) -> RunResult:
    """Execute one protocol run; see module docstring for semantics.

    Parameters
    ----------
    graph, params, policy:
        Topology, ``(c, d)``, and the Phase-2 rule (``"saer"``,
        ``"raes"``, a :class:`ServerPolicy` instance, or a factory).
    seed / tape:
        Provide exactly one source of randomness; ``tape`` allows exact
        replay across engines.
    demands:
        Optional per-client ball counts in ``[0, d]``.
    options:
        Round cap and error behaviour (:class:`RunOptions`).
    trace:
        Per-round recording level (:class:`TraceLevel`).
    slot_mode:
        Tape-consumption convention; see module docstring.
    sampling:
        ``"with_replacement"`` (Algorithm 1) or ``"without_replacement"``
        (the A3 ablation: a client's per-round requests go to distinct
        servers).  The latter is incompatible with ``slot_mode``.

    Returns
    -------
    RunResult
        With ``completed=False`` when the round cap was hit (unless
        ``options.raise_on_cap``).
    """
    if tape is not None and seed is not None:
        raise ProtocolConfigError("pass either seed or tape, not both")
    if sampling not in ("with_replacement", "without_replacement"):
        raise ProtocolConfigError(f"unknown sampling mode {sampling!r}")
    if sampling == "without_replacement" and slot_mode:
        raise ProtocolConfigError("without_replacement sampling is incompatible with slot_mode")
    opts = options or RunOptions()
    dem = _resolve_demands(graph, params.d, demands)
    total_balls = int(dem.sum())
    n_c, n_s = graph.n_clients, graph.n_servers
    pol = _make_policy(policy, n_s, params.capacity)
    tp = tape if tape is not None else RandomTape(seed)
    cap = opts.cap_for(max(n_c, n_s))

    tr = Trace(level=trace)
    tr.bind(graph, params)

    slot_client = np.repeat(np.arange(n_c, dtype=np.int64), dem)
    slot_alive = np.ones(total_balls, dtype=bool)
    alive_per_client = dem.copy()  # used only in fast mode

    assigned = 0
    work = 0
    rounds = 0
    while assigned < total_balls and rounds < cap:
        rounds += 1
        if slot_mode:
            u_all = tp.draw(total_balls)
            send_idx = np.flatnonzero(slot_alive)
            senders = slot_client[send_idx]
            u = u_all[send_idx]
        else:
            senders = np.repeat(np.arange(n_c, dtype=np.int64), alive_per_client)
            u = tp.draw(senders.size)
            send_idx = None
        n_sent = senders.size
        if sampling == "without_replacement":
            active = np.flatnonzero(alive_per_client)
            dest = draw_destinations_distinct(
                graph, active, alive_per_client[active], u
            )
        else:
            dest = draw_destinations(graph, senders, u)
        received = np.bincount(dest, minlength=n_s)
        accept_mask = pol.decide(received)
        ball_ok = accept_mask[dest]
        n_acc = int(np.count_nonzero(ball_ok))
        if slot_mode:
            slot_alive[send_idx[ball_ok]] = False
        else:
            acc_per_client = np.bincount(senders[ball_ok], minlength=n_c)
            alive_per_client -= acc_per_client
        alive_before = total_balls - assigned
        assigned += n_acc
        work += 2 * n_sent
        tr.record_round(
            alive_before=alive_before,
            requests=n_sent,
            accepted=n_acc,
            newly_blocked=pol.newly_burned_last_round,
            blocked_mask=pol.blocked_mask() if trace is not TraceLevel.NONE else None,
            received=received,
            work_cum=work,
        )

    completed = assigned == total_balls
    result = RunResult(
        protocol=pol.name,
        graph_name=graph.name,
        n_clients=n_c,
        n_servers=n_s,
        params=params,
        completed=completed,
        rounds=rounds,
        work=work,
        total_balls=total_balls,
        assigned_balls=assigned,
        alive_balls=total_balls - assigned,
        max_load=pol.max_load,
        blocked_servers=int(pol.blocked_mask().sum()),
        loads=pol.loads.copy() if opts.record_loads else None,
        trace=tr.finalize() if trace is not TraceLevel.NONE else None,
        seed_info=repr(seed) if seed is not None else "tape",
    )
    if not completed and opts.raise_on_cap:
        raise NonTerminationError(
            f"{pol.name} did not finish within {cap} rounds "
            f"({result.alive_balls}/{total_balls} balls alive)",
            result=result,
        )
    return result


def run_saer(
    graph: BipartiteGraph,
    c: float,
    d: int,
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
    trace: TraceLevel = TraceLevel.NONE,
    slot_mode: bool = False,
    sampling: str = "with_replacement",
) -> RunResult:
    """Run ``saer(c, d)`` (Algorithm 1) on ``graph``; see :func:`run_protocol`."""
    return run_protocol(
        graph,
        ProtocolParams(c=c, d=d),
        "saer",
        seed=seed,
        tape=tape,
        demands=demands,
        options=options,
        trace=trace,
        slot_mode=slot_mode,
        sampling=sampling,
    )


def run_raes(
    graph: BipartiteGraph,
    c: float,
    d: int,
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
    trace: TraceLevel = TraceLevel.NONE,
    slot_mode: bool = False,
    sampling: str = "with_replacement",
) -> RunResult:
    """Run ``raes(c, d)`` [4] on ``graph``; see :func:`run_protocol`."""
    return run_protocol(
        graph,
        ProtocolParams(c=c, d=d),
        "raes",
        seed=seed,
        tape=tape,
        demands=demands,
        options=options,
        trace=trace,
        slot_mode=slot_mode,
        sampling=sampling,
    )
