"""Slot-level coupling of SAER and RAES — the mechanism behind Corollary 2.

The paper transfers Theorem 1 from SAER to RAES by noting that "the
number of accepted client requests at every round of the raes process is
stochastically dominated by the same random variable in the saer
process".  The natural coupling realizes this *pathwise*: give both
protocols the same uniform ``u_{t,v,i}`` for every round ``t``, client
``v`` and ball slot ``i`` (the paper defines ``z_t^(i)(v,u)`` at every
round even for already-accepted balls, which is exactly what makes this
well-defined).

Under that coupling the dominance is deterministic, by induction on
rounds: if RAES's alive set is contained in SAER's, then every server
receives in SAER a superset of the balls it receives in RAES; hence a
server's cumulative received count in SAER dominates its accepted load
in RAES, so RAES can never reject a batch whose SAER copy was accepted.
Containment of alive sets is therefore preserved — and the engine
asserts it every round (``nested_every_round``).

This module runs the two policies in lockstep on shared per-round slot
uniforms and reports per-round alive counts for both, giving experiment
E5 its table and the tests a falsifiable invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import RandomTape, make_rng
from .config import ProtocolParams, RunOptions
from .engine import _resolve_demands, draw_destinations
from .policies import RaesPolicy, SaerPolicy
from .results import RunResult

__all__ = ["CoupledResult", "run_coupled"]


@dataclass
class CoupledResult:
    """Outcome of a coupled SAER/RAES execution.

    ``alive_saer[t]`` / ``alive_raes[t]`` are alive-ball counts at the
    *start* of round ``t+1``'s iteration (index 0 = initial ``n·d``).
    ``nested_every_round`` is the pathwise-dominance invariant: RAES's
    alive slot set stayed a subset of SAER's in every round.
    """

    saer: RunResult
    raes: RunResult
    alive_saer: np.ndarray
    alive_raes: np.ndarray
    nested_every_round: bool

    @property
    def raes_no_later(self) -> bool:
        """Did RAES complete no later than SAER (both completing)?"""
        if not (self.saer.completed and self.raes.completed):
            return self.raes.completed or not self.saer.completed
        return self.raes.rounds <= self.saer.rounds

    def summary(self) -> dict:
        return {
            "n": self.saer.n_clients,
            "c": self.saer.params.c,
            "d": self.saer.params.d,
            "saer_rounds": self.saer.rounds,
            "raes_rounds": self.raes.rounds,
            "saer_completed": self.saer.completed,
            "raes_completed": self.raes.completed,
            "nested_every_round": self.nested_every_round,
            "raes_no_later": self.raes_no_later,
        }


class _CoupledLeg:
    """One protocol's slot-level state inside the coupled loop."""

    def __init__(self, policy, slot_client: np.ndarray, total: int):
        self.policy = policy
        self.slot_client = slot_client
        self.alive = np.ones(total, dtype=bool)
        self.assigned = 0
        self.work = 0
        self.rounds_to_complete: int | None = 0 if total == 0 else None

    def step(self, graph: BipartiteGraph, u_all: np.ndarray, n_servers: int, round_no: int) -> None:
        if self.rounds_to_complete is not None:
            return
        send_idx = np.flatnonzero(self.alive)
        senders = self.slot_client[send_idx]
        dest = draw_destinations(graph, senders, u_all[send_idx])
        received = np.bincount(dest, minlength=n_servers)
        accept = self.policy.decide(received)
        ok = accept[dest]
        self.alive[send_idx[ok]] = False
        self.assigned += int(np.count_nonzero(ok))
        self.work += 2 * senders.size
        if not self.alive.any():
            self.rounds_to_complete = round_no


def run_coupled(
    graph: BipartiteGraph,
    c: float,
    d: int,
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
) -> CoupledResult:
    """Run SAER and RAES on one shared slot tape; see module docstring."""
    if tape is not None and seed is not None:
        raise ProtocolConfigError("pass either seed or tape, not both")
    params = ProtocolParams(c=c, d=d)
    opts = options or RunOptions()
    dem = _resolve_demands(graph, d, demands)
    total = int(dem.sum())
    n_c, n_s = graph.n_clients, graph.n_servers
    slot_client = np.repeat(np.arange(n_c, dtype=np.int64), dem)
    tp = tape if tape is not None else RandomTape(make_rng(seed))
    cap = opts.cap_for(max(n_c, n_s))

    saer = _CoupledLeg(SaerPolicy(n_s, params.capacity), slot_client, total)
    raes = _CoupledLeg(RaesPolicy(n_s, params.capacity), slot_client, total)

    alive_saer = [total]
    alive_raes = [total]
    nested = True
    rounds = 0
    while rounds < cap and (saer.rounds_to_complete is None or raes.rounds_to_complete is None):
        rounds += 1
        u_all = tp.draw(total)
        saer.step(graph, u_all, n_s, rounds)
        raes.step(graph, u_all, n_s, rounds)
        alive_saer.append(total - saer.assigned)
        alive_raes.append(total - raes.assigned)
        if np.any(raes.alive & ~saer.alive):
            nested = False

    def _result(leg: _CoupledLeg, name: str) -> RunResult:
        done = leg.rounds_to_complete is not None
        return RunResult(
            protocol=name,
            graph_name=graph.name,
            n_clients=n_c,
            n_servers=n_s,
            params=params,
            completed=done,
            rounds=leg.rounds_to_complete if done else rounds,
            work=leg.work,
            total_balls=total,
            assigned_balls=leg.assigned,
            alive_balls=total - leg.assigned,
            max_load=leg.policy.max_load,
            blocked_servers=int(leg.policy.blocked_mask().sum()),
            loads=leg.policy.loads.copy() if opts.record_loads else None,
            trace=None,
            seed_info=repr(seed) if seed is not None else "tape",
        )

    return CoupledResult(
        saer=_result(saer, "saer"),
        raes=_result(raes, "raes"),
        alive_saer=np.asarray(alive_saer, dtype=np.int64),
        alive_raes=np.asarray(alive_raes, dtype=np.int64),
        nested_every_round=nested,
    )
