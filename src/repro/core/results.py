"""Result record for a single protocol execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .config import ProtocolParams
from .metrics import Trace

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one protocol run.

    Attributes
    ----------
    protocol:
        ``"saer"`` or ``"raes"`` (or a custom policy name).
    completed:
        True iff every ball was assigned within the round cap.  When
        False, ``rounds`` equals the cap and ``alive_balls`` counts the
        leftovers — failure is data, not an exception, because several
        experiments measure failure rates (E6, E7).
    rounds:
        Number of executed rounds (the paper's *completion time* when
        ``completed``).
    work:
        Total messages exchanged: 2 per request (ball ID up, 1-bit reply
        down), matching §3.2's ``W``.
    total_balls / assigned_balls / alive_balls:
        Ball accounting; ``total = assigned + alive`` always.
    max_load / loads:
        Final server loads.  The protocol guarantees
        ``max_load ≤ ⌊c·d⌋`` unconditionally.
    blocked_servers:
        Burned servers (SAER) or at-capacity servers (RAES) at the end.
    trace:
        Optional per-round series (see :class:`~repro.core.metrics.Trace`).
    """

    protocol: str
    graph_name: str
    n_clients: int
    n_servers: int
    params: ProtocolParams
    completed: bool
    rounds: int
    work: int
    total_balls: int
    assigned_balls: int
    alive_balls: int
    max_load: int
    blocked_servers: int
    loads: Optional[np.ndarray] = field(default=None, repr=False)
    trace: Optional[Trace] = field(default=None, repr=False)
    seed_info: str = ""

    def __post_init__(self) -> None:
        if self.assigned_balls + self.alive_balls != self.total_balls:
            raise ValueError(
                "ball accounting broken: "
                f"{self.assigned_balls} + {self.alive_balls} != {self.total_balls}"
            )

    @property
    def work_per_ball(self) -> float:
        """Messages per ball — Θ(1) iff total work is Θ(n·d) (Theorem 1)."""
        return self.work / self.total_balls if self.total_balls else 0.0

    @property
    def work_per_client(self) -> float:
        """Messages per client — the normalized work of experiment E2."""
        return self.work / self.n_clients if self.n_clients else 0.0

    def summary(self) -> dict:
        """Flat dict for aggregation and table output."""
        return {
            "protocol": self.protocol,
            "graph": self.graph_name,
            "n": self.n_clients,
            "c": self.params.c,
            "d": self.params.d,
            "completed": self.completed,
            "rounds": self.rounds,
            "work": self.work,
            "work_per_client": round(self.work_per_client, 3),
            "max_load": self.max_load,
            "capacity": self.params.capacity,
            "assigned": self.assigned_balls,
            "alive": self.alive_balls,
            "blocked_servers": self.blocked_servers,
        }

    def to_dict(self, include_loads: bool = False, include_trace: bool = True) -> dict:
        """Full JSON-serializable export (for archiving experiment runs)."""
        out = self.summary()
        out["n_servers"] = self.n_servers
        out["seed_info"] = self.seed_info
        if include_loads and self.loads is not None:
            out["loads"] = self.loads.tolist()
        if include_trace and self.trace is not None:
            out["trace"] = self.trace.as_dict()
        return out

    def to_json(self, path, include_loads: bool = False) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(include_loads=include_loads), fh, indent=2)
