"""Protocol parameters and run options.

The protocol of Algorithm 1 is ``saer(c, d)``: every client starts with
(at most) ``d`` balls, and a server rejects-and-burns once it has
received more than ``c·d`` balls in total.  The integer *capacity*
``⌊c·d⌋`` is the actual threshold used by the implementation, which lets
experiments sweep non-integer ``c`` cleanly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ProtocolConfigError

__all__ = ["ProtocolParams", "RunOptions", "default_round_cap"]


@dataclass(frozen=True)
class ProtocolParams:
    """The ``(c, d)`` parameters of ``saer(c, d)`` / ``raes(c, d)``.

    Attributes
    ----------
    c:
        The threshold multiplier.  The paper's analysis uses the very
        conservative ``c ≥ max(32ρ, 288/(ηd))``; experiments show single
        digits suffice in practice (experiment E6).  Must satisfy
        ``c ≥ 1`` or no server could even hold one client's balls.
    d:
        The request number — balls per client, a constant in the paper.
    """

    c: float
    d: int

    def __post_init__(self) -> None:
        if not isinstance(self.d, int) or isinstance(self.d, bool):
            raise ProtocolConfigError(f"d must be an int; got {self.d!r}")
        if self.d < 1:
            raise ProtocolConfigError(f"d must be >= 1; got {self.d}")
        if not math.isfinite(self.c) or self.c < 1.0:
            raise ProtocolConfigError(f"c must be a finite number >= 1; got {self.c}")

    @property
    def capacity(self) -> int:
        """The integer server threshold ``⌊c·d⌋`` (max admissible load)."""
        return int(math.floor(self.c * self.d))


def default_round_cap(n: int) -> int:
    """Default safety cap on rounds: well above the ``3·ln n`` horizon.

    Theorem 1 proves completion within ``3 log n`` rounds w.h.p. for
    suitable ``c``; the cap is 10× that (plus slack for tiny ``n``) so a
    mis-parameterized run terminates with ``completed=False`` instead of
    spinning forever.
    """
    return max(60, int(30 * math.log(max(n, 2))))


@dataclass(frozen=True)
class RunOptions:
    """Execution options orthogonal to the protocol itself.

    Attributes
    ----------
    max_rounds:
        Hard cap on rounds; ``None`` means :func:`default_round_cap`.
    raise_on_cap:
        If True, hitting the cap raises
        :class:`~repro.errors.NonTerminationError` (carrying the partial
        result); otherwise the partial result is returned with
        ``completed=False``.
    record_loads:
        Keep the final per-server load vector in the result (cheap; on
        by default).
    """

    max_rounds: int | None = None
    raise_on_cap: bool = False
    record_loads: bool = True

    def __post_init__(self) -> None:
        # Fail at construction, not first use: a bad cap built on the
        # driver side of a sweep should not surface only after it has
        # been pickled out to a worker process mid-run.
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ProtocolConfigError(f"max_rounds must be >= 1; got {self.max_rounds}")

    def cap_for(self, n: int) -> int:
        if self.max_rounds is not None:
            return self.max_rounds
        return default_round_cap(n)
