"""Randomness utilities: seed management and replayable random tapes.

The paper's protocols are driven entirely by with-replacement uniform
choices made by clients.  To let two independent implementations (the
vectorized engine in :mod:`repro.core` and the faithful agent simulator
in :mod:`repro.agents`) execute *bit-identical* runs, all protocol
randomness is funneled through a :class:`RandomTape`: a pre-drawn (or
lazily grown) sequence of uniforms in ``[0, 1)`` consumed in a canonical
order documented in DESIGN.md §6 (round-major, then client index, then
ball slot).

Seed handling follows NumPy best practice: a single
:class:`numpy.random.SeedSequence` is spawned into independent child
streams, so Monte-Carlo trials running in separate processes never share
a stream.

Counter-based lineage (Philox)
------------------------------
The PCG64 streams above are *sequential*: draw ``k`` depends on having
drawn ``k-1`` values first, which forces the batched engine to fill its
per-round uniforms through a stateful read-ahead.  The **Philox4x32-10**
lineage here is *counter-based*: the uniform for (trial, round, slot) is
a pure function of a 128-bit counter and a 64-bit key, so any chunking,
thread count, prefetch order, or device produces identical bits.  A
trial's identity is four ``uint32`` words ``(k0, k1, c2, c3)`` derived
from its normally-spawned :class:`~numpy.random.SeedSequence`
(:func:`philox_seed_words`), and draw ``s`` of round ``r`` reads counter
``(s >> 1, r, c2, c3)`` under key ``(k0, k1)`` — two doubles per
counter block, high word first (:func:`philox_uniforms`).  This is an
explicit *new* seed lineage (``SeedSpec(mode="philox")``), pinned by its
own goldens — it is deliberately **not** bit-compatible with the PCG64
streams.  The core function is verified against the Random123
known-answer vectors (``tests/test_philox.py``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import TapeExhaustedError

__all__ = [
    "make_rng",
    "spawn_seeds",
    "spawn_rngs",
    "philox4x32",
    "philox_seed_words",
    "philox_trial_words",
    "philox_uniforms",
    "RandomTape",
    "TapeRecorder",
]

# Philox4x32 round constants (Random123): two 32→64-bit multipliers and
# the Weyl key schedule increments.  10 rounds is the Random123 default
# (7 already passes BigCrush; 10 keeps the standard safety margin and
# matches the published known-answer vectors).
PHILOX_M0 = 0xD2511F53
PHILOX_M1 = 0xCD9E8D57
PHILOX_W0 = 0x9E3779B9
PHILOX_W1 = 0xBB67AE85
PHILOX_ROUNDS = 10

_U32 = np.uint64(0xFFFFFFFF)
_SCALE_53 = 1.0 / 9007199254740992.0  # 2^-53


def philox4x32(counter, key, rounds: int = PHILOX_ROUNDS):
    """Vectorized Philox4x32: ``counter`` (4, n) × ``key`` (2,) or (2, n) → (4, n).

    Inputs are ``uint32``-valued (any integer dtype is accepted and
    masked); the return is the four ``uint32`` output words per column.
    This is the reference implementation the C fill in
    ``repro/batch/_kernels.c`` and the device twin in
    :mod:`repro.batch.device` are parity-pinned against; it matches the
    Random123 ``philox4x32`` known-answer vectors at ``rounds=10``.
    """
    ctr = np.atleast_2d(np.asarray(counter))
    if ctr.shape[0] != 4:
        raise ValueError(f"philox4x32 counter must have 4 words; got shape {ctr.shape}")
    k = np.asarray(key)
    if k.shape[0] != 2:
        raise ValueError(f"philox4x32 key must have 2 words; got shape {k.shape}")
    # Work in uint64 with explicit masking: the 32×32→64 products are
    # then exact and no per-round astype copies are needed.
    c0, c1, c2, c3 = (w.astype(np.uint64) & _U32 for w in ctr)
    k0 = (k[0].astype(np.uint64) if k.ndim else np.uint64(k[0])) & _U32
    k1 = (k[1].astype(np.uint64) if k.ndim else np.uint64(k[1])) & _U32
    k0, k1 = np.asarray(k0).copy(), np.asarray(k1).copy()
    m0, m1 = np.uint64(PHILOX_M0), np.uint64(PHILOX_M1)
    w0, w1 = np.uint64(PHILOX_W0), np.uint64(PHILOX_W1)
    sh = np.uint64(32)
    for _ in range(rounds):
        p0 = c0 * m0
        p1 = c2 * m1
        c0, c1, c2, c3 = (
            (p1 >> sh) ^ c1 ^ k0,
            p1 & _U32,
            (p0 >> sh) ^ c3 ^ k1,
            p0 & _U32,
        )
        k0 = (k0 + w0) & _U32
        k1 = (k1 + w1) & _U32
    out = np.empty((4,) + c0.shape, dtype=np.uint32)
    out[0], out[1], out[2], out[3] = c0, c1, c2, c3
    return out


def philox_seed_words(seed: int | None | np.random.SeedSequence) -> np.ndarray:
    """Derive one trial's four Philox words ``(k0, k1, c2, c3)``.

    The words come from ``SeedSequence.generate_state(4, uint32)`` of
    the trial's normally-spawned seed, so the philox lineage rides the
    exact same :func:`spawn_seeds` tree as the PCG64 one — only the
    uniform *source* changes, never the seed plumbing.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "the philox seed lineage is derived from seed-likes (int or "
            "SeedSequence); a live Generator carries no counter identity"
        )
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.generate_state(4, np.uint32)


def philox_trial_words(seeds: Sequence) -> np.ndarray:
    """Stack :func:`philox_seed_words` for a trial list → ``(R, 4) uint32``."""
    if len(seeds) == 0:
        return np.empty((0, 4), dtype=np.uint32)
    return np.stack([philox_seed_words(s) for s in seeds])


def philox_uniforms(
    words: np.ndarray, round_no: int, n: int, out: np.ndarray | None = None
) -> np.ndarray:
    """The first ``n`` uniforms of round ``round_no`` for one trial.

    ``words`` is the trial's ``(k0, k1, c2, c3)`` from
    :func:`philox_seed_words`.  Counter block ``b`` is
    ``(b, round_no, c2, c3)`` under key ``(k0, k1)`` and yields two
    doubles — ``((x0 << 32 | x1) >> 11) · 2⁻⁵³`` then the same from
    ``(x2, x3)`` — so draw ``s`` depends only on ``(words, round_no,
    s)``: any prefix, chunking, or over-fill produces identical bits.
    """
    if out is None:
        out = np.empty(n, dtype=np.float64)
    if n <= 0:
        return out[:0]
    nb = (n + 1) >> 1
    ctr = np.empty((4, nb), dtype=np.uint64)
    ctr[0] = np.arange(nb, dtype=np.uint64)
    ctr[1] = np.uint64(int(round_no) & 0xFFFFFFFF)
    ctr[2] = np.uint64(int(words[2]))
    ctr[3] = np.uint64(int(words[3]))
    x = philox4x32(ctr, np.asarray(words[:2], dtype=np.uint64))
    x64 = x.astype(np.uint64)
    hi = ((x64[0] << np.uint64(32)) | x64[1]) >> np.uint64(11)
    lo = ((x64[2] << np.uint64(32)) | x64[3]) >> np.uint64(11)
    seg = out[:n]
    seg[0::2] = hi.astype(np.float64)[: (n + 1) >> 1]
    seg[1::2] = lo.astype(np.float64)[: n >> 1]
    seg *= _SCALE_53
    return seg


def make_rng(seed: int | None | np.random.SeedSequence | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Accepts ``None`` (OS entropy), an integer, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged, so call sites can be
    agnostic about what they were handed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None | np.random.SeedSequence, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` statistically independent child seed sequences.

    This is the only sanctioned way the library derives per-trial seeds:
    it guarantees non-overlapping streams across processes (see the
    mpi4py/NumPy parallel-RNG guidance).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(n)


def spawn_rngs(seed: int | None | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (convenience over :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


class RandomTape:
    """A replayable stream of uniform floats in ``[0, 1)``.

    Two modes:

    * **Live** (``values=None``): draws are generated on demand from an
      internal :class:`~numpy.random.Generator` *and recorded*, so the
      same tape object can later be :meth:`rewind`-ed and replayed.
    * **Fixed** (``values`` given): the tape replays exactly the provided
      values and raises :class:`~repro.errors.TapeExhaustedError` when
      they run out.

    The tape is the contract between the vectorized engine and the agent
    simulator: both consume uniforms in the same canonical order, so a
    rewound tape reproduces an identical protocol execution.
    """

    def __init__(
        self,
        seed: int | None | np.random.SeedSequence | np.random.Generator = None,
        values: Sequence[float] | np.ndarray | None = None,
    ):
        if values is not None:
            arr = np.asarray(values, dtype=np.float64)
            if arr.ndim != 1:
                raise ValueError("tape values must be one-dimensional")
            if arr.size and (arr.min() < 0.0 or arr.max() >= 1.0):
                raise ValueError("tape values must lie in [0, 1)")
            self._values = arr
            self._fixed = True
            self._rng = None
        else:
            self._values = np.empty(0, dtype=np.float64)
            self._fixed = False
            self._rng = make_rng(seed)
        self._pos = 0

    # -- core draw ---------------------------------------------------------

    def draw(self, k: int) -> np.ndarray:
        """Return the next ``k`` uniforms as a float64 array.

        In live mode, grows the recording as needed.  In fixed mode,
        raises :class:`TapeExhaustedError` if fewer than ``k`` values
        remain.
        """
        if k < 0:
            raise ValueError(f"cannot draw a negative count: {k}")
        end = self._pos + k
        if end > self._values.size:
            if self._fixed:
                raise TapeExhaustedError(
                    f"tape exhausted: requested {k} values at position {self._pos}, "
                    f"tape holds {self._values.size}"
                )
            fresh = self._rng.random(end - self._values.size)
            self._values = np.concatenate([self._values, fresh])
        out = self._values[self._pos : end]
        self._pos = end
        return out

    def draw_one(self) -> float:
        """Return a single uniform (scalar convenience over :meth:`draw`)."""
        return float(self.draw(1)[0])

    # -- replay ------------------------------------------------------------

    def rewind(self) -> None:
        """Reset the read head to the beginning without discarding history."""
        self._pos = 0

    def fork(self) -> "RandomTape":
        """Return a fixed tape replaying everything recorded so far.

        Useful for handing the exact same randomness to a second engine:
        the fork starts at position 0 and is independent of this tape's
        read head.
        """
        return RandomTape(values=self._values[: max(self._pos, self._values.size)].copy())

    @property
    def position(self) -> int:
        """Current read position (number of values consumed)."""
        return self._pos

    @property
    def recorded(self) -> np.ndarray:
        """A copy of every value drawn/provided so far."""
        return self._values.copy()

    def __len__(self) -> int:
        return int(self._values.size)


class TapeRecorder:
    """Accumulates draws into a flat array for later fixed-tape replay.

    Thin helper used by tests that want to pre-script randomness: append
    uniforms (scalars or arrays) and then :meth:`to_tape`.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []

    def append(self, values: float | Iterable[float]) -> None:
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
        self._chunks.append(arr)

    def to_tape(self) -> RandomTape:
        if self._chunks:
            flat = np.concatenate(self._chunks)
        else:
            flat = np.empty(0, dtype=np.float64)
        return RandomTape(values=flat)
