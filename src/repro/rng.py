"""Randomness utilities: seed management and replayable random tapes.

The paper's protocols are driven entirely by with-replacement uniform
choices made by clients.  To let two independent implementations (the
vectorized engine in :mod:`repro.core` and the faithful agent simulator
in :mod:`repro.agents`) execute *bit-identical* runs, all protocol
randomness is funneled through a :class:`RandomTape`: a pre-drawn (or
lazily grown) sequence of uniforms in ``[0, 1)`` consumed in a canonical
order documented in DESIGN.md §6 (round-major, then client index, then
ball slot).

Seed handling follows NumPy best practice: a single
:class:`numpy.random.SeedSequence` is spawned into independent child
streams, so Monte-Carlo trials running in separate processes never share
a stream.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import TapeExhaustedError

__all__ = [
    "make_rng",
    "spawn_seeds",
    "spawn_rngs",
    "RandomTape",
    "TapeRecorder",
]


def make_rng(seed: int | None | np.random.SeedSequence | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Accepts ``None`` (OS entropy), an integer, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged, so call sites can be
    agnostic about what they were handed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None | np.random.SeedSequence, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` statistically independent child seed sequences.

    This is the only sanctioned way the library derives per-trial seeds:
    it guarantees non-overlapping streams across processes (see the
    mpi4py/NumPy parallel-RNG guidance).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return ss.spawn(n)


def spawn_rngs(seed: int | None | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (convenience over :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


class RandomTape:
    """A replayable stream of uniform floats in ``[0, 1)``.

    Two modes:

    * **Live** (``values=None``): draws are generated on demand from an
      internal :class:`~numpy.random.Generator` *and recorded*, so the
      same tape object can later be :meth:`rewind`-ed and replayed.
    * **Fixed** (``values`` given): the tape replays exactly the provided
      values and raises :class:`~repro.errors.TapeExhaustedError` when
      they run out.

    The tape is the contract between the vectorized engine and the agent
    simulator: both consume uniforms in the same canonical order, so a
    rewound tape reproduces an identical protocol execution.
    """

    def __init__(
        self,
        seed: int | None | np.random.SeedSequence | np.random.Generator = None,
        values: Sequence[float] | np.ndarray | None = None,
    ):
        if values is not None:
            arr = np.asarray(values, dtype=np.float64)
            if arr.ndim != 1:
                raise ValueError("tape values must be one-dimensional")
            if arr.size and (arr.min() < 0.0 or arr.max() >= 1.0):
                raise ValueError("tape values must lie in [0, 1)")
            self._values = arr
            self._fixed = True
            self._rng = None
        else:
            self._values = np.empty(0, dtype=np.float64)
            self._fixed = False
            self._rng = make_rng(seed)
        self._pos = 0

    # -- core draw ---------------------------------------------------------

    def draw(self, k: int) -> np.ndarray:
        """Return the next ``k`` uniforms as a float64 array.

        In live mode, grows the recording as needed.  In fixed mode,
        raises :class:`TapeExhaustedError` if fewer than ``k`` values
        remain.
        """
        if k < 0:
            raise ValueError(f"cannot draw a negative count: {k}")
        end = self._pos + k
        if end > self._values.size:
            if self._fixed:
                raise TapeExhaustedError(
                    f"tape exhausted: requested {k} values at position {self._pos}, "
                    f"tape holds {self._values.size}"
                )
            fresh = self._rng.random(end - self._values.size)
            self._values = np.concatenate([self._values, fresh])
        out = self._values[self._pos : end]
        self._pos = end
        return out

    def draw_one(self) -> float:
        """Return a single uniform (scalar convenience over :meth:`draw`)."""
        return float(self.draw(1)[0])

    # -- replay ------------------------------------------------------------

    def rewind(self) -> None:
        """Reset the read head to the beginning without discarding history."""
        self._pos = 0

    def fork(self) -> "RandomTape":
        """Return a fixed tape replaying everything recorded so far.

        Useful for handing the exact same randomness to a second engine:
        the fork starts at position 0 and is independent of this tape's
        read head.
        """
        return RandomTape(values=self._values[: max(self._pos, self._values.size)].copy())

    @property
    def position(self) -> int:
        """Current read position (number of values consumed)."""
        return self._pos

    @property
    def recorded(self) -> np.ndarray:
        """A copy of every value drawn/provided so far."""
        return self._values.copy()

    def __len__(self) -> int:
        return int(self._values.size)


class TapeRecorder:
    """Accumulates draws into a flat array for later fixed-tape replay.

    Thin helper used by tests that want to pre-script randomness: append
    uniforms (scalars or arrays) and then :meth:`to_tape`.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []

    def append(self, values: float | Iterable[float]) -> None:
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
        self._chunks.append(arr)

    def to_tape(self) -> RandomTape:
        if self._chunks:
            flat = np.concatenate(self._chunks)
        else:
            flat = np.empty(0, dtype=np.float64)
        return RandomTape(values=flat)
