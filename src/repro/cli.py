"""Command-line interface: run experiments and print their tables.

Usage::

    repro-lb list
    repro-lb info E4
    repro-lb run E1 [--trials 10] [--seed 7] [--processes 8] [--csv out.csv]
    repro-lb run all

(Equivalently ``python -m repro.cli …``.)  The same runners back the
pytest-benchmark suite in ``benchmarks/``; the CLI exists for quick
interactive regeneration of a single table.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import format_table, write_csv
from .errors import ExperimentError
from .experiments import get_experiment, list_experiments
from .experiments import runners as runner_mod

__all__ = ["main", "run_experiment"]


def run_experiment(exp_id: str, *, trials: int | None = None, seed=None, processes=None):
    """Invoke the registered runner for ``exp_id``; returns (rows, meta)."""
    spec = get_experiment(exp_id)
    fn = getattr(runner_mod, spec.runner)
    kwargs = {}
    if trials is not None and "trials" in fn.__code__.co_varnames:
        kwargs["trials"] = trials
    if seed is not None:
        kwargs["seed"] = seed
    if processes is not None and "processes" in fn.__code__.co_varnames:
        kwargs["processes"] = processes
    return fn(**kwargs)


def _cmd_list(_args) -> int:
    rows = [
        {"id": s.id, "title": s.title, "paper_ref": s.paper_ref, "bench": s.bench}
        for s in list_experiments()
    ]
    print(format_table(rows, title="Registered experiments"))
    return 0


def _cmd_info(args) -> int:
    spec = get_experiment(args.experiment)
    print(f"{spec.id}: {spec.title}")
    print(f"  claim:    {spec.claim}")
    print(f"  paper:    {spec.paper_ref}")
    print(f"  runner:   repro.experiments.runners.{spec.runner}")
    print(f"  bench:    {spec.bench}")
    print(f"  expected: {spec.expected_shape}")
    if spec.modules:
        print(f"  modules:  {', '.join(spec.modules)}")
    return 0


def _run_ablations(args) -> tuple[list, dict, str]:
    from .experiments.ablations import run_ablations

    kwargs = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.processes is not None:
        kwargs["processes"] = args.processes
    rows, meta = run_ablations(**kwargs)
    return rows, meta, "A1-A3 — design-choice ablations"


def _cmd_run(args) -> int:
    target = args.experiment.lower()
    if target == "ablations":
        rows, meta, title = _run_ablations(args)
        print(format_table(rows, title=title))
        printable = {k: v for k, v in meta.items() if k != "records"}
        print("meta:", printable)
        if args.csv:
            write_csv(rows, args.csv)
            print(f"wrote {args.csv}")
        return 0
    ids = [s.id for s in list_experiments()] if target == "all" else [args.experiment]
    for exp_id in ids:
        spec = get_experiment(exp_id)
        rows, meta = run_experiment(
            exp_id, trials=args.trials, seed=args.seed, processes=args.processes
        )
        print(format_table(rows, title=f"{spec.id} — {spec.title}"))
        printable = {k: v for k, v in meta.items() if k != "records"}
        if printable:
            print("meta:", printable)
        print()
        if args.csv and len(ids) == 1:
            write_csv(rows, args.csv)
            print(f"wrote {args.csv}")
    if target == "all":
        rows, meta, title = _run_ablations(args)
        print(format_table(rows, title=title))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Regenerate the experiment tables of the SAER reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all registered experiments")
    p_info = sub.add_parser("info", help="describe one experiment")
    p_info.add_argument("experiment", help="experiment id, e.g. E4")
    p_run = sub.add_parser("run", help="run an experiment and print its table")
    p_run.add_argument("experiment", help="experiment id (E1..E12), 'ablations', or 'all'")
    p_run.add_argument("--trials", type=int, default=None, help="override trial count")
    p_run.add_argument("--seed", type=int, default=None, help="override root seed")
    p_run.add_argument(
        "--processes", type=int, default=None, help="worker processes (1 = serial)"
    )
    p_run.add_argument("--csv", default=None, help="also write the table to a CSV file")
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "info":
            return _cmd_info(args)
        return _cmd_run(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
