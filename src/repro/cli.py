"""Command-line interface: run experiments and print their tables.

Usage::

    repro-lb list
    repro-lb info E4
    repro-lb run E1 [--trials 10] [--seed 7] [--processes 8] [--csv out.csv]
    repro-lb run all
    repro-lb smoke
    repro-lb serve [--n 4096 --port 7077 ...]
    repro-lb loadgen [--mode inprocess|tcp ...]

(Equivalently ``python -m repro.cli …``.)  The same runners back the
pytest-benchmark suite in ``benchmarks/``; the CLI exists for quick
interactive regeneration of a single table.

Every ``run`` flag maps 1:1 onto a :class:`repro.plan.RunPlan` axis
(``--backend``/``--kernel``/``--kernel-threads`` → ``BackendSpec``, ``--share-graph``/
``--graph-cache`` → ``GraphSpec``, ``--processes`` → ``ExecSpec``,
``--results``/``--spool`` → ``ResultSpec``, ``--resume`` →
``execute(plan, resume=…)``, ``--trials``/``--seed`` → grid scale
and seed policy).  Which axes an experiment supports comes from its
registry declaration (:attr:`repro.experiments.ExperimentSpec.capabilities`)
— not from signature probing — and an override the experiment does not
support produces a warning instead of being silently dropped.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings

from .analysis.tables import format_table, write_csv
from .errors import ExperimentError
from .experiments import get_experiment, list_experiments
from .experiments import runners as runner_mod

__all__ = ["main", "run_experiment"]


def run_experiment(
    exp_id: str,
    *,
    trials: int | None = None,
    seed=None,
    processes=None,
    backend: str | None = None,
    share_graph: bool | None = None,
    graph_cache: str | None = None,
    results: str | None = None,
    kernel: str | None = None,
    kernel_threads: int | None = None,
    spool: str | None = None,
    resume: str | None = None,
    seed_mode: str | None = None,
):
    """Invoke the registered runner for ``exp_id``; returns (rows, meta).

    Overrides are forwarded according to the experiment's
    registry-declared plan capabilities; an override outside them (e.g.
    ``backend`` for an experiment whose semantics need traces/coupling,
    or ``share_graph`` outside fixed-topology sweeps) emits a
    :class:`UserWarning` and is not forwarded.
    """
    spec = get_experiment(exp_id)
    fn = getattr(runner_mod, spec.runner)
    kwargs = {}
    overrides = {
        "trials": trials,
        "seed": seed,
        "processes": processes,
        "backend": backend,
        "share_graph": share_graph,
        "graph_cache": graph_cache,
        "results": results,
        "kernel": kernel,
        "kernel_threads": kernel_threads,
        "spool": spool,
        "resume": resume,
        "seed_mode": seed_mode,
    }
    for name, value in overrides.items():
        if value is None:
            continue
        if name in spec.capabilities:
            kwargs[name] = value
            continue
        if name == "kernel" and os.environ.get("REPRO_KERNELS") == value:
            # The CLI already exported the gate via REPRO_KERNELS — the
            # documented mechanism for kernel-agnostic runners (their
            # engines read it at call time) — so the override *is*
            # applied; warning "ignored" here would be wrong.
            continue
        if name == "kernel_threads" and os.environ.get(
            "REPRO_KERNEL_THREADS"
        ) == str(value):
            # Same story for the thread budget: already exported via
            # REPRO_KERNEL_THREADS for serial kernel-agnostic runners.
            continue
        if name == "seed_mode" and os.environ.get("REPRO_SEED_MODE") == value:
            # And for the seed lineage: REPRO_SEED_MODE reaches every
            # batched-engine call regardless of plan capabilities.
            continue
        warnings.warn(
            f"{spec.id} does not support the {name!r} override "
            f"(declared capabilities: {', '.join(spec.capabilities)}); ignoring it",
            UserWarning,
            stacklevel=2,
        )
    return fn(**kwargs)


def _cmd_list(_args) -> int:
    rows = [
        {"id": s.id, "title": s.title, "paper_ref": s.paper_ref, "bench": s.bench}
        for s in list_experiments()
    ]
    print(format_table(rows, title="Registered experiments"))
    return 0


def _cmd_info(args) -> int:
    spec = get_experiment(args.experiment)
    print(f"{spec.id}: {spec.title}")
    print(f"  claim:    {spec.claim}")
    print(f"  paper:    {spec.paper_ref}")
    print(f"  runner:   repro.experiments.runners.{spec.runner}")
    print(f"  bench:    {spec.bench}")
    print(f"  expected: {spec.expected_shape}")
    if spec.modules:
        print(f"  modules:  {', '.join(spec.modules)}")
    return 0


def _run_ablations(args) -> tuple[list, dict, str]:
    from .experiments.ablations import run_ablations

    kwargs = {}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.processes is not None:
        kwargs["processes"] = args.processes
    rows, meta = run_ablations(**kwargs)
    return rows, meta, "A1-A3 — design-choice ablations"


def _cmd_run(args) -> int:
    if args.kernel:
        # The engine reads the gate at call time, and forked pool
        # workers inherit the environment — one setting covers both.
        os.environ["REPRO_KERNELS"] = args.kernel
    if args.kernel_threads:
        # Serial runs read this at call time; pool workers reset it to
        # 1, so pooled threading needs the plan-level budget — which is
        # exactly what kernel-capable experiments get via
        # BackendSpec.threads below.
        os.environ["REPRO_KERNEL_THREADS"] = str(args.kernel_threads)
    if args.seed_mode:
        # Like --kernel: the batched engine resolves the seed lineage at
        # call time from REPRO_SEED_MODE, and forked workers inherit it.
        os.environ["REPRO_SEED_MODE"] = args.seed_mode
    target = args.experiment.lower()
    if target == "all" and (args.spool or args.resume):
        # One spool directory belongs to one plan fingerprint; spreading
        # every experiment's journal over a single dir would make each
        # one reject the others' journals.
        print(
            "error: --spool/--resume apply to a single experiment "
            "(a spool directory is keyed to one plan fingerprint)",
            file=sys.stderr,
        )
        return 2
    if target == "ablations":
        rows, meta, title = _run_ablations(args)
        print(format_table(rows, title=title))
        printable = {k: v for k, v in meta.items() if k != "records"}
        print("meta:", printable)
        if args.csv:
            write_csv(rows, args.csv)
            print(f"wrote {args.csv}")
        return 0
    ids = [s.id for s in list_experiments()] if target == "all" else [args.experiment]
    for exp_id in ids:
        spec = get_experiment(exp_id)
        rows, meta = run_experiment(
            exp_id,
            trials=args.trials,
            seed=args.seed,
            processes=args.processes,
            backend=args.backend,
            share_graph=True if args.share_graph else None,
            graph_cache=args.graph_cache,
            results=args.results,
            kernel=args.kernel,
            kernel_threads=args.kernel_threads,
            spool=args.spool,
            resume=args.resume,
            seed_mode=args.seed_mode,
        )
        print(format_table(rows, title=f"{spec.id} — {spec.title}"))
        printable = {k: v for k, v in meta.items() if k != "records"}
        if printable:
            print("meta:", printable)
        print()
        if args.csv and len(ids) == 1:
            write_csv(rows, args.csv)
            print(f"wrote {args.csv}")
    if target == "all":
        rows, meta, title = _run_ablations(args)
        print(format_table(rows, title=title))
    return 0


def _cmd_smoke(args) -> int:
    from .experiments.smoke import run_plan_smoke

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    only = args.only.split(",") if args.only else None
    rows, ok = run_plan_smoke(
        backends=backends,
        processes=args.processes,
        only=only,
        spool_root=args.spool_root,
    )
    print(format_table(rows, title="Plan smoke — execute(plan) across experiments × backends"))
    if not ok:
        print("plan smoke FAILED", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The serving-layer tools own their argument surfaces (and `serve`
    # blocks on an event loop), so they dispatch before the table
    # parser; the stub subparsers below only provide --help visibility.
    if argv and argv[0] == "serve":
        from .serve.service import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from .serve.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Regenerate the experiment tables of the SAER reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list all registered experiments")
    p_info = sub.add_parser("info", help="describe one experiment")
    p_info.add_argument("experiment", help="experiment id, e.g. E4")
    p_run = sub.add_parser("run", help="run an experiment and print its table")
    p_run.add_argument("experiment", help="experiment id (E1..E12, S1, F1), 'ablations', or 'all'")
    p_run.add_argument("--trials", type=int, default=None, help="override trial count")
    p_run.add_argument("--seed", type=int, default=None, help="override root seed")
    p_run.add_argument(
        "--processes", type=int, default=None, help="worker processes (1 = serial)"
    )
    p_run.add_argument(
        "--backend",
        choices=("reference", "batched"),
        default=None,
        help="trial execution backend: per-trial reference engine, or the "
        "trial-vectorized batched engine.  NOTE: batched runs a sweep "
        "point's trials on one shared graph draw (protocol-level Monte "
        "Carlo), while reference redraws the graph per trial (joint "
        "graph x protocol estimate).  Experiments whose semantics need "
        "traces/coupling ignore this and always use the reference engine.",
    )
    p_run.add_argument(
        "--share-graph",
        action="store_true",
        help="pin one topology for the whole sweep and hand workers a "
        "zero-copy view (SharedGraph / fork inheritance) instead of "
        "rebuilding or pickling the graph per task.  Only honoured by "
        "fixed-topology sweeps (currently E6); conditions the estimate "
        "on a single graph draw.",
    )
    p_run.add_argument(
        "--kernel",
        choices=("numpy", "cext", "numba", "python", "cupy"),
        default=None,
        help="round-kernel implementation for the batched engine: numpy "
        "reference (default), fused C (cext), numba JIT, the "
        "interpreted compiled-algorithm loops (python; debugging "
        "only), or the GPU device twin (cupy; needs CuPy and "
        "--seed-mode philox).  Maps onto the plan's BackendSpec.kernel "
        "for kernel-capable experiments (travels inside the pickled "
        "worker) and sets REPRO_KERNELS for everything else.  All "
        "are bit-identical; unavailable ones fall back to numpy "
        "with a warning.",
    )
    p_run.add_argument(
        "--seed-mode",
        choices=("pair", "direct", "philox"),
        default=None,
        help="per-trial seed lineage: 'pair' spawns a child "
        "SeedSequence per trial (default, matches the reference "
        "engine), 'direct' seeds each trial's generator with the raw "
        "entry, 'philox' derives counter-based Philox4x32 streams "
        "(batched engine only; its own golden lineage — distinct bits "
        "from pair/direct — enabling vectorized, chunking-invariant "
        "fills and the GPU twin).  Maps onto the plan's SeedSpec.mode "
        "for sweep experiments and sets REPRO_SEED_MODE for "
        "everything else.",
    )
    p_run.add_argument(
        "--kernel-threads",
        type=int,
        default=None,
        metavar="T",
        help="trial-partitioned thread budget for the compiled round "
        "kernels (OpenMP cext / numba prange): trials are split into T "
        "chunks per round and run in parallel.  Bit-identical results "
        "at every T.  Maps onto the plan's BackendSpec.threads for "
        "kernel-capable experiments (travels inside the pickled "
        "worker, capped so threads x processes stays within the core "
        "count) and sets REPRO_KERNEL_THREADS for everything else; "
        "pool workers default to 1 to avoid oversubscription.",
    )
    p_run.add_argument(
        "--results",
        choices=("records", "columnar"),
        default=None,
        help="sweep results carrier: legacy per-trial record dicts, or "
        "the columnar spool (typed ResultBlock arrays from batched "
        "workers, assembled into one ResultTable).  Identical record "
        "content; columnar is the sweep runners' default.",
    )
    p_run.add_argument(
        "--graph-cache",
        default=None,
        metavar="DIR",
        help="on-disk graph cache directory: worker-side graph builds "
        "keyed by (family, params, seed) are stored once and mapped "
        "back on every later run",
    )
    p_run.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="durable execution: stream each grid point's results to "
        "checksummed block files in DIR with a crash-tolerant journal "
        "(repro.durable), instead of holding the whole table in "
        "memory.  A crashed or killed run restarts from where it left "
        "off via --resume.  Needs a reproducible seed (the default or "
        "--seed).  Single experiments only, not 'all'.",
    )
    p_run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume an interrupted --spool run from DIR: completed "
        "grid points are verified against their journaled checksums "
        "and skipped; incomplete ones re-run.  The resumed table is "
        "bit-identical to an uninterrupted run.  Errors out if the "
        "plan does not match the journal's fingerprint.",
    )
    p_run.add_argument("--csv", default=None, help="also write the table to a CSV file")
    p_smoke = sub.add_parser(
        "smoke",
        help="dry-run every registered experiment through execute(plan) at "
        "tiny scale, across every backend its capabilities declare "
        "(the CI plan-smoke job)",
    )
    p_smoke.add_argument(
        "--backends",
        default="reference,batched",
        help="comma-separated backends to exercise (default: reference,batched)",
    )
    p_smoke.add_argument(
        "--processes", type=int, default=1, help="worker processes per run (1 = serial)"
    )
    p_smoke.add_argument(
        "--only",
        default=None,
        metavar="IDS",
        help="comma-separated experiment ids to restrict to (e.g. E1,E6)",
    )
    p_smoke.add_argument(
        "--spool-root",
        default=None,
        metavar="DIR",
        help="also route spool-capable experiments through the durable "
        "on-disk sink, one subdirectory per (experiment, backend)",
    )
    sub.add_parser(
        "serve",
        help="serve live SAER assignment traffic over NDJSON/TCP, optionally "
        "sharded across --workers N processes "
        "(repro-lb serve --help for its options)",
    )
    sub.add_parser(
        "loadgen",
        help="replay an arrival trace against the serving layer, in-process "
        "(single service or a --workers N fleet) or over TCP, and write "
        "BENCH_serve.json (repro-lb loadgen --help for its options)",
    )
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "smoke":
            return _cmd_smoke(args)
        return _cmd_run(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
