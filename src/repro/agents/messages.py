"""Message types of model M.

The model allows exactly two message kinds (§2.1): a client may send a
ball ID to a server along an edge, and the server answers that request
with a single bit.  The dataclasses carry routing fields (sender ids)
because the simulation needs to deliver replies; a real deployment
would get those from the transport layer, not the payload — the
*protocol-visible* content is only the ball ID and the bit, which the
tests enforce by checking that no load/threshold information appears in
any message.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BallRequest", "Reply"]


@dataclass(frozen=True)
class BallRequest:
    """Phase-1 message: client ``client_id`` submits ball ``ball_slot``.

    ``ball_slot`` is the client's *local* label for the ball (footnote
    10: "it suffices that each client keeps a local labeling of its ball
    set").
    """

    client_id: int
    ball_slot: int


@dataclass(frozen=True)
class Reply:
    """Phase-2 message: the server's one-bit answer to a request."""

    client_id: int
    ball_slot: int
    accept: bool
