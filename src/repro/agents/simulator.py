"""Agent-level protocol runner, API-compatible with the vectorized engine.

Returns the same :class:`~repro.core.results.RunResult` as
:func:`repro.core.run_protocol`, and consumes a
:class:`~repro.rng.RandomTape` in the identical canonical order, so::

    tape = RandomTape(seed=7)
    fast = run_saer(g, c, d, tape=tape)
    tape.rewind()
    slow = run_agent_saer(g, c, d, tape=tape)
    assert fast.rounds == slow.rounds and fast.work == slow.work
    assert np.array_equal(fast.loads, slow.loads)

holds exactly (this is asserted by the integration tests).
"""

from __future__ import annotations

import numpy as np

from ..core.config import ProtocolParams, RunOptions
from ..core.results import RunResult
from ..errors import GraphValidationError, NonTerminationError, ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import RandomTape
from .client import ClientAgent
from .network import SynchronousNetwork
from .server import RaesServerAgent, SaerServerAgent

__all__ = ["run_agent_protocol", "run_agent_saer", "run_agent_raes"]

_SERVER_KINDS = {"saer": SaerServerAgent, "raes": RaesServerAgent}


def run_agent_protocol(
    graph: BipartiteGraph,
    params: ProtocolParams,
    policy: str = "saer",
    *,
    seed=None,
    tape: RandomTape | None = None,
    demands=None,
    options: RunOptions | None = None,
    slot_mode: bool = False,
) -> RunResult:
    """Run the protocol with real message-passing agents.

    Parameters mirror :func:`repro.core.run_protocol`; only ``trace`` is
    unsupported here (use the engine for traced runs — they are the same
    execution anyway).
    """
    if tape is not None and seed is not None:
        raise ProtocolConfigError("pass either seed or tape, not both")
    if policy not in _SERVER_KINDS:
        raise ProtocolConfigError(f"unknown policy {policy!r}; known: {sorted(_SERVER_KINDS)}")
    opts = options or RunOptions()
    n_c, n_s = graph.n_clients, graph.n_servers

    if demands is None:
        dem = np.full(n_c, params.d, dtype=np.int64)
    else:
        dem = np.asarray(demands, dtype=np.int64)
        if dem.shape != (n_c,):
            raise ProtocolConfigError(f"demands must have shape ({n_c},)")
        if np.any(dem < 0) or np.any(dem > params.d):
            raise ProtocolConfigError("demands must lie in [0, d]")
    if np.any((graph.client_degrees == 0) & (dem > 0)):
        raise GraphValidationError("clients with balls but no neighbors cannot terminate")

    degrees = graph.client_degrees
    clients = [ClientAgent(v, int(degrees[v]), int(dem[v])) for v in range(n_c)]
    server_cls = _SERVER_KINDS[policy]
    servers = [server_cls(u, params.capacity) for u in range(n_s)]
    net = SynchronousNetwork(graph, clients, servers)

    tp = tape if tape is not None else RandomTape(seed)
    total_balls = int(dem.sum())
    slot_starts = np.zeros(n_c + 1, dtype=np.int64)
    np.cumsum(dem, out=slot_starts[1:])
    cap = opts.cap_for(max(n_c, n_s))

    assigned = 0
    rounds = 0
    while assigned < total_balls and rounds < cap:
        rounds += 1
        if slot_mode:
            # Every slot consumes one uniform; clients read the entries
            # of their still-alive local slots.
            u_all = tp.draw(total_balls)
            per_client = [
                u_all[slot_starts[v] + np.asarray(clients[v].alive_slots, dtype=np.int64)]
                if clients[v].alive_slots
                else np.empty(0, dtype=np.float64)
                for v in range(n_c)
            ]
        else:
            # Only alive balls consume tape, in client-ascending order —
            # the same canonical order as the engine's fast path.
            counts = [c.n_alive for c in clients]
            u_round = tp.draw(int(sum(counts)))
            per_client = []
            pos = 0
            for k in counts:
                per_client.append(u_round[pos : pos + k])
                pos += k
        assigned += net.run_round(per_client)

    completed = assigned == total_balls
    loads = np.array([s.load for s in servers], dtype=np.int64)
    result = RunResult(
        protocol=policy,
        graph_name=graph.name,
        n_clients=n_c,
        n_servers=n_s,
        params=params,
        completed=completed,
        rounds=rounds,
        work=net.messages_sent,
        total_balls=total_balls,
        assigned_balls=assigned,
        alive_balls=total_balls - assigned,
        max_load=int(loads.max()) if n_s else 0,
        blocked_servers=sum(1 for s in servers if s.is_blocked),
        loads=loads if opts.record_loads else None,
        trace=None,
        seed_info=repr(seed) if seed is not None else "tape",
    )
    if not completed and opts.raise_on_cap:
        raise NonTerminationError(
            f"agent {policy} did not finish within {cap} rounds", result=result
        )
    return result


def run_agent_saer(graph, c: float, d: int, **kwargs) -> RunResult:
    """Agent-level ``saer(c, d)``; see :func:`run_agent_protocol`."""
    return run_agent_protocol(graph, ProtocolParams(c=c, d=d), "saer", **kwargs)


def run_agent_raes(graph, c: float, d: int, **kwargs) -> RunResult:
    """Agent-level ``raes(c, d)``; see :func:`run_agent_protocol`."""
    return run_agent_protocol(graph, ProtocolParams(c=c, d=d), "raes", **kwargs)
