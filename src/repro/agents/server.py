"""Server entities of model M: the SAER and RAES Phase-2 rules, scalar form.

These re-implement the decision rules *independently* of the vectorized
:mod:`repro.core.policies` (per-object integer state instead of NumPy
arrays), which is what makes the engine/agents equivalence tests a real
cross-check rather than a tautology.
"""

from __future__ import annotations

from .messages import BallRequest, Reply

__all__ = ["ServerAgent", "SaerServerAgent", "RaesServerAgent"]


class ServerAgent:
    """Base server: knows the threshold ``capacity = ⌊c·d⌋`` (servers,
    unlike clients, are configured with the global parameter — remark
    (ii) after Algorithm 1)."""

    name = "abstract"

    def __init__(self, server_id: int, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.server_id = server_id
        self.capacity = capacity
        self.load = 0  # accepted balls, d_in

    def phase2(self, batch: list[BallRequest]) -> list[Reply]:
        """Answer this round's batch with one bit per request."""
        raise NotImplementedError

    @property
    def is_blocked(self) -> bool:
        """Would this server reject any non-empty batch right now?"""
        raise NotImplementedError


class SaerServerAgent(ServerAgent):
    """SAER rule (Algorithm 1 lines 7-17): burn on cumulative *received*.

    State: ``received_total`` counts every ball ever received (even in
    rounds whose batch was rejected, and even after burning — the
    clients keep sending because the protocol is non-adaptive);
    ``burned`` is permanent.
    """

    name = "saer"

    def __init__(self, server_id: int, capacity: int):
        super().__init__(server_id, capacity)
        self.received_total = 0
        self.burned = False

    def phase2(self, batch: list[BallRequest]) -> list[Reply]:
        self.received_total += len(batch)
        if self.burned:
            accept = False
        elif self.received_total > self.capacity:
            accept = False
            self.burned = True
        else:
            accept = True
        if accept:
            self.load += len(batch)
        return [Reply(r.client_id, r.ball_slot, accept) for r in batch]

    @property
    def is_blocked(self) -> bool:
        return self.burned


class RaesServerAgent(ServerAgent):
    """RAES rule [4]: reject a batch iff accepting it would exceed capacity.

    No permanent state: a saturated server accepts again in a lighter
    round, as long as ``load + |batch| ≤ capacity``.
    """

    name = "raes"

    def __init__(self, server_id: int, capacity: int):
        super().__init__(server_id, capacity)
        self.saturation_events = 0

    def phase2(self, batch: list[BallRequest]) -> list[Reply]:
        accept = self.load + len(batch) <= self.capacity
        if accept:
            self.load += len(batch)
        elif batch:
            self.saturation_events += 1
        return [Reply(r.client_id, r.ball_slot, accept) for r in batch]

    @property
    def is_blocked(self) -> bool:
        return self.load >= self.capacity
