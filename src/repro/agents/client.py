"""The client entity of model M.

A client owns a local label set of balls, knows only its own
neighborhood (a local link labeling — it addresses servers by *link
index*, not by any global ID), and needs no global parameters: in
particular it never learns ``c`` (remark (ii) after Algorithm 1).
"""

from __future__ import annotations

import math

import numpy as np

from .messages import BallRequest, Reply

__all__ = ["ClientAgent"]


class ClientAgent:
    """One client ``v ∈ C`` with up to ``d`` balls.

    Parameters
    ----------
    client_id:
        The simulation's routing handle for this client (not used by the
        protocol logic itself).
    n_links:
        Size of the local link table, ``Δ_v``.  The client draws a link
        index uniformly in ``[0, Δ_v)`` per alive ball per round.
    demand:
        Number of balls this client starts with (``≤ d``).
    """

    def __init__(self, client_id: int, n_links: int, demand: int):
        if demand > 0 and n_links <= 0:
            raise ValueError(f"client {client_id} has balls but no links")
        self.client_id = client_id
        self.n_links = n_links
        # Alive ball slots in ascending local-label order; this ordering
        # is part of the canonical tape contract (DESIGN.md §6).
        self.alive_slots: list[int] = list(range(demand))
        self.done = demand == 0

    # -- Phase 1 -----------------------------------------------------------

    def phase1(self, uniforms: np.ndarray) -> list[tuple[int, BallRequest]]:
        """Pick a link per alive ball from pre-drawn uniforms.

        Returns ``(link_index, request)`` pairs; the network resolves
        link indices to actual servers (the client itself has no global
        server names).  ``uniforms`` must have exactly one value per
        alive ball, in slot order.
        """
        if len(uniforms) != len(self.alive_slots):
            raise ValueError(
                f"client {self.client_id}: got {len(uniforms)} uniforms "
                f"for {len(self.alive_slots)} alive balls"
            )
        out: list[tuple[int, BallRequest]] = []
        for u, slot in zip(uniforms, self.alive_slots):
            link = min(int(math.floor(float(u) * self.n_links)), self.n_links - 1)
            out.append((link, BallRequest(client_id=self.client_id, ball_slot=slot)))
        return out

    @property
    def n_alive(self) -> int:
        return len(self.alive_slots)

    # -- Phase 2 -----------------------------------------------------------

    def receive_replies(self, replies: list[Reply]) -> int:
        """Process this round's 1-bit replies; returns balls newly assigned.

        Line 18-22 of Algorithm 1: update ``d_out`` and enter the
        ``done`` state when every ball has been placed.
        """
        accepted = {r.ball_slot for r in replies if r.accept}
        if accepted:
            self.alive_slots = [s for s in self.alive_slots if s not in accepted]
        if not self.alive_slots:
            self.done = True
        return len(accepted)
