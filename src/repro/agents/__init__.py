"""A faithful, object-level implementation of the distributed model M (§2.1).

Clients and servers are individual Python objects that exchange
:class:`~repro.agents.messages.BallRequest` / 1-bit
:class:`~repro.agents.messages.Reply` messages through a
:class:`~repro.agents.network.SynchronousNetwork`, which enforces the
model's information constraints: requests carry only a ball ID, replies
carry only accept/reject, servers never reveal loads, and only the
servers know the threshold parameter ``c`` (the privacy remark after
Algorithm 1).

This layer is deliberately *independent* of the vectorized engine in
:mod:`repro.core` — same tape in, same execution out, verified by the
equivalence tests.  It is slower (per-message Python), so use it as the
semantic oracle and for demos, and the engine for experiments.
"""

from .client import ClientAgent
from .messages import BallRequest, Reply
from .network import SynchronousNetwork
from .server import RaesServerAgent, SaerServerAgent, ServerAgent
from .simulator import run_agent_protocol, run_agent_raes, run_agent_saer

__all__ = [
    "BallRequest",
    "Reply",
    "ClientAgent",
    "ServerAgent",
    "SaerServerAgent",
    "RaesServerAgent",
    "SynchronousNetwork",
    "run_agent_protocol",
    "run_agent_saer",
    "run_agent_raes",
]
