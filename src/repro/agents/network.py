"""Synchronous message transport between client and server agents.

The network is the only component that knows the graph: clients address
servers by *local link index* and the network resolves link ``j`` of
client ``v`` to the ``j``-th entry of ``N(v)`` (sorted CSR row).  It
counts every message (requests up, replies down) — this is the §2.1
*work* measure.
"""

from __future__ import annotations

import numpy as np

from ..graphs.bipartite import BipartiteGraph
from .client import ClientAgent
from .messages import BallRequest, Reply
from .server import ServerAgent

__all__ = ["SynchronousNetwork"]


class SynchronousNetwork:
    """Delivers one synchronous round of Phase-1/Phase-2 traffic.

    The round structure mirrors Algorithm 1 exactly:

    1. every client with alive balls draws destinations and submits
       requests (messages counted on send);
    2. each server answers its whole batch with accept/reject bits
       (messages counted on reply);
    3. clients apply their replies.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        clients: list[ClientAgent],
        servers: list[ServerAgent],
    ):
        if len(clients) != graph.n_clients or len(servers) != graph.n_servers:
            raise ValueError("agent counts must match the graph sides")
        self.graph = graph
        self.clients = clients
        self.servers = servers
        self.messages_sent = 0
        self.rounds_run = 0

    def run_round(self, uniforms_per_client: list[np.ndarray]) -> int:
        """Execute one round; returns the number of balls assigned.

        ``uniforms_per_client[v]`` holds client ``v``'s pre-drawn
        uniforms for this round (one per alive ball, slot order) — the
        canonical tape contract shared with the vectorized engine.
        """
        self.rounds_run += 1
        # Phase 1: submit.  Iterate clients in ascending index order (the
        # canonical order); deliver into per-server batches, preserving
        # arrival order (irrelevant to the decision, which is per-batch).
        inboxes: list[list[BallRequest]] = [[] for _ in self.servers]
        for v, client in enumerate(self.clients):
            if client.done:
                continue
            row = self.graph.neighbors_of_client(v)
            for link, req in client.phase1(uniforms_per_client[v]):
                u = int(row[link])
                inboxes[u].append(req)
                self.messages_sent += 1
        # Phase 2: servers answer their batches.
        outboxes: list[list[Reply]] = [[] for _ in self.clients]
        for server in self.servers:
            batch = inboxes[server.server_id]
            if not batch:
                # An empty batch produces no replies; the decision rule
                # is vacuous (and for SAER, receiving zero balls can
                # never trip the burn threshold).
                continue
            for reply in server.phase2(batch):
                outboxes[reply.client_id].append(reply)
                self.messages_sent += 1
        # Clients apply replies.
        assigned = 0
        for v, client in enumerate(self.clients):
            if outboxes[v]:
                assigned += client.receive_replies(outboxes[v])
        return assigned

    @property
    def all_done(self) -> bool:
        return all(c.done for c in self.clients)
