"""Sweep-point → graph resolution: the experiment harness's family vocabulary.

Every sweep point in this library describes its topology with a small
dict vocabulary — ``family`` (default ``"regular"``), ``n``, and the
family's parameters (``degree``, ``p``, ``radius``, …) with canonical
defaults derived from ``n``.  This module owns that vocabulary so the
execution-plan layer (:mod:`repro.plan`), the experiment runners, and
any external driver resolve a point to the *same* graph build for the
same seed.

The canonical experiment degree is ``Δ = ⌈log₂² n⌉`` (η ≈ 1 in the
paper's ``Δ ≥ η·log² n`` hypothesis); see :func:`canonical_degree`.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from .generators import (
    erdos_renyi_bipartite,
    geometric_bipartite,
    near_regular,
    paper_extremal,
    random_regular_bipartite,
    trust_subsets,
)
from .io import cached_graph

__all__ = ["canonical_degree", "family_spec", "build_point_graph"]


def canonical_degree(n: int) -> int:
    """The experiments' canonical degree: ``Δ = ⌈log₂² n⌉`` (η ≈ 1, base 2)."""
    return max(2, math.ceil(math.log2(n) ** 2))


def family_spec(point: Mapping) -> tuple[str, Callable, dict]:
    """Resolve a sweep point to ``(family, builder, params)``.

    The point must carry ``n``; ``family`` defaults to ``"regular"``;
    family parameters fall back to canonical defaults derived from
    ``n`` (e.g. the :func:`canonical_degree`).
    """
    family = point.get("family", "regular")
    n = point["n"]
    if family == "regular":
        return family, random_regular_bipartite, {
            "n": n,
            "degree": point.get("degree", canonical_degree(n)),
        }
    if family == "trust":
        return family, trust_subsets, {
            "n_clients": n,
            "n_servers": n,
            "k": point.get("degree", canonical_degree(n)),
        }
    if family == "near_regular":
        lo = point.get("degree_lo", canonical_degree(n))
        hi = point.get("degree_hi", 2 * lo)
        return family, near_regular, {"n": n, "degree_lo": lo, "degree_hi": hi}
    if family == "paper_extremal":
        return family, paper_extremal, {"n": n, "eta": point.get("eta", 0.5)}
    if family == "er":
        return family, erdos_renyi_bipartite, {
            "n_clients": n,
            "n_servers": n,
            "p": point.get("p", canonical_degree(n) / n),
        }
    if family == "geometric":
        r = point.get("radius", math.sqrt(canonical_degree(n) / (math.pi * n)))
        return family, geometric_bipartite, {"n_clients": n, "n_servers": n, "radius": r}
    raise ValueError(f"unknown graph family {family!r}")


def build_point_graph(point: Mapping, seed, cache_dir: str | None = None):
    """Build the graph a sweep point asks for (worker-side).

    With ``cache_dir`` the build goes through the on-disk graph cache
    (:func:`repro.graphs.io.cached_graph`): repeated sweeps over the
    same ``(family, params, seed)`` pay construction once.
    """
    family, builder, params = family_spec(point)
    return cached_graph(builder, family, params, seed, cache_dir)
