"""Random bipartite graph generators used throughout the experiments.

Each generator returns an immutable :class:`~repro.graphs.bipartite.BipartiteGraph`
(simple — no parallel edges, see that module's docstring) and accepts a
``seed`` in any form :func:`repro.rng.make_rng` understands.

Families provided (and where the paper needs them):

* :func:`random_regular_bipartite` — the Δ-regular graphs of §3.
* :func:`biregular` — unequal sides, constant degrees per side.
* :func:`near_regular` — client degrees spread over ``[Δ, ρΔ]``,
  exercising the almost-regularity allowance of Theorem 1.
* :func:`paper_extremal` — the "non-extremal example" after Theorem 1:
  most clients of degree ``Θ(log² n)``, a few of degree ``Θ(√n)``,
  a few servers of degree ``O(1)``.
* :func:`erdos_renyi_bipartite`, :func:`geometric_bipartite`,
  :func:`trust_subsets` — the application-flavoured topologies from the
  introduction (random, proximity-constrained, trust-restricted).
* :func:`complete_bipartite` — the dense case of prior work [4, 25].
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GraphConstructionError
from ..rng import make_rng
from .bipartite import BipartiteGraph

__all__ = [
    "random_regular_bipartite",
    "community_bipartite",
    "biregular",
    "near_regular",
    "paper_extremal",
    "erdos_renyi_bipartite",
    "geometric_bipartite",
    "trust_subsets",
    "complete_bipartite",
]

_MAX_RESTARTS = 50
_MAX_REPAIR_PASSES = 300


def _sample_distinct(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """Sample ``k`` distinct integers from ``range(n)`` (sorted).

    Rejection sampling when ``k`` is small relative to ``n`` (the common
    case: neighborhoods are ``polylog(n)``); falls back to a partial
    permutation otherwise.  O(k) expected vs O(n) for ``rng.choice``.
    """
    if k > n:
        raise GraphConstructionError(f"cannot sample {k} distinct values from range({n})")
    if k == n:
        return np.arange(n, dtype=np.int64)
    if k > n // 8:
        return np.sort(rng.permutation(n)[:k].astype(np.int64))
    picked = np.unique(rng.integers(0, n, size=int(k * 1.3) + 8))
    while picked.size < k:
        extra = rng.integers(0, n, size=k)
        picked = np.unique(np.concatenate([picked, extra]))
    if picked.size > k:
        picked = rng.choice(picked, size=k, replace=False)
    return np.sort(picked.astype(np.int64))


def _reject_resample_rows(
    rng: np.random.Generator, n: int, row_of: np.ndarray, total: int
) -> np.ndarray:
    """Core of :func:`_sample_distinct_rows`: collision-resampled rows.

    Draws one uniform value in ``range(n)`` per entry and resamples
    colliding entries (equal values within the same row) until every row
    is duplicate-free.  The procedure only compares drawn labels for
    equality, so its output law is invariant under any permutation of
    the labels — each row is therefore an exactly uniform distinct
    sample.  Returns the flat values sorted within each row.

    Expected iterations are O(1) when every row draws at most half its
    range (each pass shrinks the collision count by a factor ≤ k/n).
    """
    vals = rng.integers(0, n, size=total)
    keys = row_of * np.int64(n) + vals
    while True:
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        dup = np.zeros(total, dtype=bool)
        if total > 1:
            dup[1:] = sk[1:] == sk[:-1]
        bad = order[dup]
        if bad.size == 0:
            return sk - row_of[order] * np.int64(n)
        fresh = rng.integers(0, n, size=bad.size)
        vals[bad] = fresh
        keys[bad] = row_of[bad] * np.int64(n) + fresh


def _rowsort_resample(rng: np.random.Generator, n: int, m: np.ndarray) -> None:
    """Resample in-row collisions of the padded sample matrix, in place.

    ``m`` is ``(rows, kmax)`` with valid draws in ``[0, n)`` and the pad
    sentinel ``n`` (which sorts past every valid value).  Rows are
    sorted, colliding slots redrawn, and only affected rows re-sorted
    until every row is duplicate-free.  Only equality between drawn
    labels is ever inspected, so the output law is invariant under label
    permutations — each row is an exactly uniform distinct sample.
    """
    m.sort(axis=1)
    while True:
        dup = m[:, 1:] == m[:, :-1]
        dup &= m[:, 1:] < n  # pad sentinels self-compare equal; ignore them
        rr, cc = np.nonzero(dup)
        if rr.size == 0:
            return
        m[rr, cc + 1] = rng.integers(0, n, size=rr.size, dtype=m.dtype)
        bad = np.unique(rr)
        sub = m[bad]
        sub.sort(axis=1)
        m[bad] = sub


def _sample_distinct_rows(
    rng: np.random.Generator, n: int, counts: np.ndarray
) -> np.ndarray:
    """Batched distinct sampling: row ``i`` gets ``counts[i]`` distinct
    values from ``range(n)``, sorted within the row.

    The whole-array replacement for calling :func:`_sample_distinct`
    once per client: one flat array of ``counts.sum()`` values comes
    back, rows delimited by ``cumsum(counts)`` — ready to be used as
    CSR ``indices`` via :meth:`BipartiteGraph.from_csr`.

    Strategy: draw every row's candidates at once into a ``(rows,
    max(counts))`` matrix (pad sentinel ``n``), sort rows in place, and
    redraw colliding slots until no row has a duplicate — collisions
    shrink by a factor ≤ k/n per pass, so a handful of passes suffice.
    Rows requesting more than half their range are sampled through
    their complement (a uniform ``(n-k)``-subset's complement is a
    uniform ``k``-subset), keeping the redraw loop in its fast regime.
    A flat sort-based fallback handles degenerate padding (a few huge
    rows among many tiny ones).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size and int(counts.max(initial=0)) > n:
        raise GraphConstructionError(
            f"cannot sample {int(counts.max())} distinct values from range({n})"
        )
    if np.any(counts < 0):
        raise GraphConstructionError("sample counts must be non-negative")
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    dense = counts > n // 2
    if dense.any():
        return _sample_distinct_rows_mixed(rng, n, counts, dense)

    n_rows = counts.size
    kmax = int(counts.max())
    dtype = np.int32 if n < 2**31 - 1 else np.int64
    if n_rows * kmax > max(4 * total, 1 << 24):
        # Pathological padding (few huge rows, many tiny ones): flat path.
        row_of = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
        return _reject_resample_rows(rng, n, row_of, total)
    if n_rows * kmax == total:
        m = rng.integers(0, n, size=(n_rows, kmax), dtype=dtype)
    else:
        m = np.full((n_rows, kmax), n, dtype=dtype)
        valid = np.arange(kmax, dtype=np.int64)[None, :] < counts[:, None]
        m[valid] = rng.integers(0, n, size=total, dtype=dtype)
    _rowsort_resample(rng, n, m)
    if n_rows * kmax == total:
        return m.reshape(-1).astype(np.int64)
    return m[m < n].astype(np.int64)


def _sample_distinct_rows_mixed(
    rng: np.random.Generator, n: int, counts: np.ndarray, dense: np.ndarray
) -> np.ndarray:
    """Mixed regime of :func:`_sample_distinct_rows`: some rows sample
    more than half their range.  Sparse rows go through the row-sort
    sampler; dense rows sample their complement and invert via a
    per-row membership mask."""
    total = int(counts.sum())
    out = np.empty(total, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    sparse_rows = np.flatnonzero(~dense)
    if sparse_rows.size:
        s_counts = counts[sparse_rows]
        s_vals = _sample_distinct_rows(rng, n, s_counts)
        s_pos = np.repeat(starts[sparse_rows] - (np.cumsum(s_counts) - s_counts), s_counts)
        out[np.arange(s_vals.size, dtype=np.int64) + s_pos] = s_vals
    dense_rows = np.flatnonzero(dense)
    d_counts = counts[dense_rows]
    comp_counts = n - d_counts
    c_vals = _sample_distinct_rows(rng, n, comp_counts)
    mask = np.ones((dense_rows.size, n), dtype=bool)
    c_row_of = np.repeat(np.arange(dense_rows.size, dtype=np.int64), comp_counts)
    mask[c_row_of, c_vals] = False
    _d_rows, d_vals = np.nonzero(mask)
    d_pos = np.repeat(starts[dense_rows] - (np.cumsum(d_counts) - d_counts), d_counts)
    out[np.arange(d_vals.size, dtype=np.int64) + d_pos] = d_vals
    return out


def _repair_duplicates(pairs: np.ndarray, n_servers: int, rng: np.random.Generator) -> bool:
    """Make a configuration-model edge list simple via endpoint swaps.

    Swapping the server endpoints of two edges preserves every degree on
    both sides, so the repaired graph keeps the prescribed degree
    sequence exactly.  Returns True on success, False if the random walk
    failed to clear all duplicates within the pass budget (caller then
    restarts from a fresh pairing).
    """
    m = pairs.shape[0]
    for _ in range(_MAX_REPAIR_PASSES):
        keys = pairs[:, 0].astype(np.int64) * np.int64(n_servers) + pairs[:, 1]
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        dup_sorted = np.zeros(m, dtype=bool)
        if m > 1:
            dup_sorted[1:] = sk[1:] == sk[:-1]
        dup_idx = order[dup_sorted]
        if dup_idx.size == 0:
            return True
        partners = rng.integers(0, m, size=dup_idx.size)
        for i, j in zip(dup_idx.tolist(), partners.tolist()):
            if i == j:
                continue
            pairs[i, 1], pairs[j, 1] = pairs[j, 1], pairs[i, 1]
    return False


def _configuration_bipartite(
    client_degrees: np.ndarray,
    server_degrees: np.ndarray,
    rng: np.random.Generator,
    name: str,
) -> BipartiteGraph:
    """Exact-degree-sequence bipartite graph via the configuration model.

    Pairs client stubs with a random permutation of server stubs, then
    repairs parallel edges by degree-preserving swaps.  Restarts with a
    fresh permutation if the repair walk stalls.
    """
    client_degrees = np.asarray(client_degrees, dtype=np.int64)
    server_degrees = np.asarray(server_degrees, dtype=np.int64)
    if client_degrees.sum() != server_degrees.sum():
        raise GraphConstructionError(
            f"degree sums differ: clients {int(client_degrees.sum())} vs "
            f"servers {int(server_degrees.sum())}"
        )
    if np.any(client_degrees < 0) or np.any(server_degrees < 0):
        raise GraphConstructionError("degrees must be non-negative")
    if np.any(client_degrees > server_degrees.size):
        raise GraphConstructionError("a client degree exceeds the number of servers")
    if np.any(server_degrees > client_degrees.size):
        raise GraphConstructionError("a server degree exceeds the number of clients")
    n_clients, n_servers = client_degrees.size, server_degrees.size
    total = int(client_degrees.sum())
    # Dense regime: the swap-repair walk stalls when few non-edges remain.
    # Realize the complement sequence (sparse) and invert — complementation
    # maps degree d to (other side size - d) exactly.
    if total > (n_clients * n_servers) // 2 and total < n_clients * n_servers:
        if n_clients * n_servers > (1 << 26):
            raise GraphConstructionError(
                "dense degree sequence too large for complementation "
                f"({n_clients}×{n_servers}); reduce density or size"
            )
        comp = _configuration_bipartite(
            n_servers - client_degrees, n_clients - server_degrees, rng, name="tmp-complement"
        )
        mask = np.ones((n_clients, n_servers), dtype=bool)
        e = comp.edges()
        mask[e[:, 0], e[:, 1]] = False
        rows, cols = np.nonzero(mask)
        return BipartiteGraph.from_edges(
            n_clients, n_servers, np.column_stack([rows, cols]), name=name, validate=False
        )
    if total == n_clients * n_servers:
        g = complete_bipartite(n_clients, n_servers)
        return BipartiteGraph(
            n_clients=g.n_clients,
            n_servers=g.n_servers,
            client_indptr=g.client_indptr,
            client_indices=g.client_indices,
            server_indptr=g.server_indptr,
            server_indices=g.server_indices,
            name=name,
        )
    client_stubs = np.repeat(np.arange(n_clients, dtype=np.int64), client_degrees)
    server_stubs = np.repeat(np.arange(n_servers, dtype=np.int64), server_degrees)
    for _ in range(_MAX_RESTARTS):
        pairs = np.column_stack([client_stubs, rng.permutation(server_stubs)])
        if _repair_duplicates(pairs, n_servers, rng):
            return BipartiteGraph.from_edges(n_clients, n_servers, pairs, name=name)
    raise GraphConstructionError(
        "configuration model failed to produce a simple graph "
        f"(n_clients={n_clients}, n_servers={n_servers}); degrees too close to complete?"
    )


def random_regular_bipartite(n: int, degree: int, seed=None) -> BipartiteGraph:
    """Random Δ-regular bipartite graph on ``n`` clients and ``n`` servers.

    This is the topology of §3 (the regular case of Theorem 1): every
    client and every server has degree exactly ``degree``.
    """
    if n <= 0:
        raise GraphConstructionError("n must be positive")
    if not (0 < degree <= n):
        raise GraphConstructionError(f"degree must be in [1, n]; got {degree} with n={n}")
    rng = make_rng(seed)
    deg = np.full(n, degree, dtype=np.int64)
    # Dense sequences (degree > n/2, including the complete graph) are
    # handled inside _configuration_bipartite via complementation.
    return _configuration_bipartite(deg, deg, rng, name=f"regular(n={n},deg={degree})")


def biregular(n_clients: int, n_servers: int, client_degree: int, seed=None) -> BipartiteGraph:
    """Biregular graph: every client has degree ``client_degree``.

    Server degrees are as equal as the divisibility allows: all equal to
    ``n_clients*client_degree / n_servers`` when that is an integer, and
    differing by at most one otherwise (the remainder is spread over a
    random subset of servers).
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0 < client_degree <= n_servers):
        raise GraphConstructionError("client_degree must be in [1, n_servers]")
    rng = make_rng(seed)
    total = n_clients * client_degree
    base, rem = divmod(total, n_servers)
    if base >= n_clients and rem:
        raise GraphConstructionError("server degrees would exceed the number of clients")
    sdeg = np.full(n_servers, base, dtype=np.int64)
    if rem:
        bump = rng.choice(n_servers, size=rem, replace=False)
        sdeg[bump] += 1
    cdeg = np.full(n_clients, client_degree, dtype=np.int64)
    return _configuration_bipartite(
        cdeg, sdeg, rng, name=f"biregular(nc={n_clients},ns={n_servers},cdeg={client_degree})"
    )


def near_regular(
    n: int,
    degree_lo: int,
    degree_hi: int,
    seed=None,
) -> BipartiteGraph:
    """Almost-regular graph: client degrees uniform in ``[degree_lo, degree_hi]``.

    Server degrees are balanced to match the (random) total, so the
    almost-regularity ratio ``Δ_max(S)/Δ_min(C)`` stays close to
    ``degree_hi/degree_lo`` — the ρ knob of Theorem 1.
    """
    if n <= 0:
        raise GraphConstructionError("n must be positive")
    if not (0 < degree_lo <= degree_hi <= n):
        raise GraphConstructionError("need 0 < degree_lo <= degree_hi <= n")
    rng = make_rng(seed)
    cdeg = rng.integers(degree_lo, degree_hi + 1, size=n).astype(np.int64)
    total = int(cdeg.sum())
    base, rem = divmod(total, n)
    sdeg = np.full(n, base, dtype=np.int64)
    if rem:
        bump = rng.choice(n, size=rem, replace=False)
        sdeg[bump] += 1
    return _configuration_bipartite(
        cdeg, sdeg, rng, name=f"near_regular(n={n},lo={degree_lo},hi={degree_hi})"
    )


def paper_extremal(n: int, eta: float = 1.0, seed=None) -> BipartiteGraph:
    """The degree-variance example discussed after Theorem 1.

    Builds a graph where

    * most clients have the minimal degree ``Δ_min = ⌈η log² n⌉``,
    * ``⌈log n⌉`` *heavy* clients have degree ``⌈√n⌉``,
    * ``⌈log n⌉`` *weak* servers have degree ``O(1)`` (they appear in
      only a couple of neighborhoods),
    * every other server has degree ``Θ(log² n)``.

    The theorem's hypotheses hold: ``Δ_min(C) ≥ η log² n`` and
    ``Δ_max(S)/Δ_min(C)`` is bounded by a constant (the construction
    balances normal-server degrees within a factor ~2 of ``Δ_min``).
    """
    if n < 16:
        raise GraphConstructionError("paper_extremal needs n >= 16")
    rng = make_rng(seed)
    log_n = math.log(n)
    d_min = max(2, math.ceil(eta * log_n * log_n))
    d_heavy = min(n, math.ceil(math.sqrt(n)))
    k = max(1, math.ceil(log_n))  # number of heavy clients and of weak servers
    if d_min > n or d_heavy > n:
        raise GraphConstructionError("n too small for the requested eta")

    cdeg = np.full(n, d_min, dtype=np.int64)
    cdeg[:k] = max(d_heavy, d_min)
    total = int(cdeg.sum())

    # Weak servers receive a constant degree; the remaining mass is
    # spread nearly evenly over normal servers.
    weak_deg = 2
    n_weak = k
    rest = total - weak_deg * n_weak
    n_normal = n - n_weak
    base, rem = divmod(rest, n_normal)
    if base >= n:
        raise GraphConstructionError("degree mass too large; reduce eta")
    sdeg = np.empty(n, dtype=np.int64)
    sdeg[:n_weak] = weak_deg
    sdeg[n_weak:] = base
    if rem:
        bump = n_weak + rng.choice(n_normal, size=rem, replace=False)
        sdeg[bump] += 1
    g = _configuration_bipartite(cdeg, sdeg, rng, name=f"paper_extremal(n={n},eta={eta})")
    return g


def erdos_renyi_bipartite(
    n_clients: int,
    n_servers: int,
    p: float,
    seed=None,
) -> BipartiteGraph:
    """Bipartite Erdős–Rényi graph: each (client, server) edge present w.p. ``p``.

    Implemented per client as a Binomial degree draw followed by a
    distinct-server sample, which is exactly equivalent and avoids an
    O(n²) dense mask.
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0.0 <= p <= 1.0):
        raise GraphConstructionError(f"p must be in [0, 1]; got {p}")
    rng = make_rng(seed)
    degrees = rng.binomial(n_servers, p, size=n_clients).astype(np.int64)
    indices = _sample_distinct_rows(rng, n_servers, degrees)
    indptr = np.zeros(n_clients + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return BipartiteGraph.from_csr(
        n_clients,
        n_servers,
        indptr,
        indices,
        name=f"er(nc={n_clients},ns={n_servers},p={p:g})",
        validate=False,
    )


def geometric_bipartite(
    n_clients: int,
    n_servers: int,
    radius: float,
    seed=None,
    torus: bool = True,
) -> BipartiteGraph:
    """Proximity graph: points in the unit square, edge iff within ``radius``.

    Models the introduction's "clients and servers are placed over a
    metric space … only proximity-feasible interactions".  With
    ``torus=True`` distances wrap, so expected degrees are uniform
    ``≈ n·π·radius²`` with no boundary effects.

    Uses a cell grid so the pair search is ``O(n · expected_degree)``
    rather than ``O(n²)``; the grid join is whole-array (candidate pairs
    are materialized with a segmented gather, then distance-filtered in
    one shot — no per-client Python loop).
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0.0 < radius <= math.sqrt(2.0)):
        raise GraphConstructionError("radius must be in (0, sqrt(2)]")
    rng = make_rng(seed)
    cpos = rng.random((n_clients, 2))
    spos = rng.random((n_servers, 2))
    ncell = max(1, int(1.0 / radius))
    name = f"geometric(nc={n_clients},ns={n_servers},r={radius:g},torus={torus})"
    r2 = radius * radius

    if ncell < 3:
        # Coarse grids (radius > 1/3): wrapped neighbor cells coincide and
        # the graph is dense anyway (expected degree Ω(n)), so test all
        # pairs in client blocks — work stays proportional to the output.
        block = max(1, (1 << 24) // max(n_servers, 1))
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for lo in range(0, n_clients, block):
            hi = min(lo + block, n_clients)
            diff = np.abs(cpos[lo:hi, None, :] - spos[None, :, :])
            if torus:
                diff = np.minimum(diff, 1.0 - diff)
            hit_r, hit_c = np.nonzero((diff * diff).sum(axis=2) <= r2)
            rows_parts.append(hit_r.astype(np.int64) + lo)
            cols_parts.append(hit_c.astype(np.int64))
        pairs = np.column_stack([np.concatenate(rows_parts), np.concatenate(cols_parts)])
        return BipartiteGraph.from_edges(n_clients, n_servers, pairs, name=name, validate=False)

    cell_w = 1.0 / ncell

    def cell_of(pts: np.ndarray) -> np.ndarray:
        return np.minimum((pts / cell_w).astype(np.int64), ncell - 1)

    # Servers bucketed by cell: `sorder` lists server ids cell-by-cell,
    # `cell_starts`/`cell_counts` delimit each cell's run.
    scell = cell_of(spos)
    skey = scell[:, 0] * ncell + scell[:, 1]
    sorder = np.argsort(skey, kind="stable")
    cell_counts = np.bincount(skey, minlength=ncell * ncell)
    cell_starts = np.zeros(ncell * ncell + 1, dtype=np.int64)
    np.cumsum(cell_counts, out=cell_starts[1:])

    # The 3×3 cell neighborhood of every client at once: (n_clients, 9)
    # cell ids (ncell ≥ 3, so the nine wrapped cells are distinct and no
    # candidate dedup is needed).
    ccell = cell_of(cpos)
    offs = np.array([(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)], dtype=np.int64)
    gx = ccell[:, 0, None] + offs[None, :, 0]
    gy = ccell[:, 1, None] + offs[None, :, 1]
    if torus:
        gx %= ncell
        gy %= ncell
        valid = np.ones(gx.shape, dtype=bool)
    else:
        valid = (gx >= 0) & (gx < ncell) & (gy >= 0) & (gy < ncell)
        gx = np.clip(gx, 0, ncell - 1)
        gy = np.clip(gy, 0, ncell - 1)
    cells = (gx * ncell + gy)[valid]
    cl_of_entry = np.broadcast_to(
        np.arange(n_clients, dtype=np.int64)[:, None], valid.shape
    )[valid]

    # Segmented gather: expand each (client, cell) entry into that cell's
    # server run, giving the flat candidate-pair arrays.
    reps = cell_counts[cells]
    total = int(reps.sum())
    seg_ends = np.cumsum(reps)
    seg_starts = seg_ends - reps
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, reps)
    cand_server = sorder[np.repeat(cell_starts[cells], reps) + within]
    cand_client = np.repeat(cl_of_entry, reps)

    # Distance filter, axis-by-axis with in-place 1-D ops: the candidate
    # set is ~3× the edge count, so 2-D temporaries would dominate the
    # whole build in allocator traffic.
    d2 = np.empty(total, dtype=np.float64)
    axis_buf = np.empty(total, dtype=np.float64)
    for axis in (0, 1):
        np.take(np.ascontiguousarray(spos[:, axis]), cand_server, out=axis_buf)
        axis_buf -= np.ascontiguousarray(cpos[:, axis])[cand_client]
        np.abs(axis_buf, out=axis_buf)
        if torus:
            np.minimum(axis_buf, np.subtract(1.0, axis_buf), out=axis_buf)
        axis_buf *= axis_buf
        if axis == 0:
            d2[:] = axis_buf
        else:
            d2 += axis_buf
    hit = d2 <= r2
    rows_hit = cand_client[hit]
    cols_hit = cand_server[hit]
    # rows_hit is already client-major (candidates were generated per
    # client); one in-place sort of the combined key orders each row's
    # servers without an edge-list lexsort round-trip.
    indptr = np.zeros(n_clients + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows_hit, minlength=n_clients), out=indptr[1:])
    keys = rows_hit * np.int64(n_servers) + cols_hit
    keys.sort()
    indices = keys - np.repeat(
        np.arange(n_clients, dtype=np.int64) * np.int64(n_servers), np.diff(indptr)
    )
    return BipartiteGraph.from_csr(
        n_clients, n_servers, indptr, indices, name=name, validate=False
    )


def trust_subsets(n_clients: int, n_servers: int, k: int, seed=None) -> BipartiteGraph:
    """Godfrey's random-cluster model: each client trusts ``k`` random servers.

    Each neighborhood ``N(v)`` is a uniform ``k``-subset of the servers,
    independently per client — the "fixed subset of trusted servers"
    scenario from the introduction and from [17].
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0 < k <= n_servers):
        raise GraphConstructionError("k must be in [1, n_servers]")
    rng = make_rng(seed)
    indices = _sample_distinct_rows(rng, n_servers, np.full(n_clients, k, dtype=np.int64))
    indptr = np.arange(n_clients + 1, dtype=np.int64) * np.int64(k)
    return BipartiteGraph.from_csr(
        n_clients,
        n_servers,
        indptr,
        indices,
        name=f"trust(nc={n_clients},ns={n_servers},k={k})",
        validate=False,
    )


def community_bipartite(
    n: int,
    n_groups: int,
    k_within: int,
    k_across: int,
    seed=None,
) -> BipartiteGraph:
    """Community-structured trust graph: correlated neighborhoods.

    Clients and servers are split into ``n_groups`` equal communities;
    each client trusts ``k_within`` servers of its own community and
    ``k_across`` servers elsewhere.  Unlike :func:`trust_subsets`, the
    neighborhoods of same-community clients overlap heavily, so burned
    servers are *shared* — the stochastic-dependence structure the
    paper's analysis must cope with (§1.2), in concentrated form.  Used
    as an adversarial family in the invariant tests.
    """
    if n <= 0 or n_groups <= 0:
        raise GraphConstructionError("n and n_groups must be positive")
    if n % n_groups != 0:
        raise GraphConstructionError(f"n={n} must be divisible by n_groups={n_groups}")
    group = n // n_groups
    if not (0 <= k_within <= group):
        raise GraphConstructionError(f"k_within must be in [0, {group}]")
    if not (0 <= k_across <= n - group):
        raise GraphConstructionError(f"k_across must be in [0, {n - group}]")
    if k_within + k_across == 0:
        raise GraphConstructionError("every client needs at least one trusted server")
    rng = make_rng(seed)
    k = k_within + k_across
    group_start = (np.arange(n, dtype=np.int64) // group) * np.int64(group)
    parts: list[np.ndarray] = []
    if k_within:
        # One batched draw over the group-local range, shifted to each
        # client's own community block.
        within = _sample_distinct_rows(rng, group, np.full(n, k_within, dtype=np.int64))
        parts.append(within.reshape(n, k_within) + group_start[:, None])
    if k_across:
        # Draw over range(n - group) and skip the client's own block:
        # position x maps to server x when x < group_start, else x + group
        # (exactly the complement enumeration the per-client loop used).
        across = _sample_distinct_rows(rng, n - group, np.full(n, k_across, dtype=np.int64))
        across = across.reshape(n, k_across)
        parts.append(across + np.where(across >= group_start[:, None], group, 0))
    # The two blocks are disjoint per client (own community vs the rest),
    # so a per-row sort of the stacked matrix merges them duplicate-free.
    m = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)
    m.sort(axis=1)
    indices = np.ascontiguousarray(m.reshape(-1))
    indptr = np.arange(n + 1, dtype=np.int64) * np.int64(k)
    return BipartiteGraph.from_csr(
        n,
        n,
        indptr,
        indices,
        name=f"community(n={n},groups={n_groups},kin={k_within},kout={k_across})",
        validate=False,
    )


def complete_bipartite(n_clients: int, n_servers: int) -> BipartiteGraph:
    """The complete bipartite graph — the classic balls-into-bins setting.

    This is the dense topology of the prior work the paper builds on
    ([25], [4] with Δ = n); useful as the reference point in the degree
    sweep (experiment E7).
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    rows = np.repeat(np.arange(n_clients, dtype=np.int64), n_servers)
    cols = np.tile(np.arange(n_servers, dtype=np.int64), n_clients)
    pairs = np.column_stack([rows, cols])
    return BipartiteGraph.from_edges(
        n_clients, n_servers, pairs, name=f"complete(nc={n_clients},ns={n_servers})", validate=False
    )
