"""Random bipartite graph generators used throughout the experiments.

Each generator returns an immutable :class:`~repro.graphs.bipartite.BipartiteGraph`
(simple — no parallel edges, see that module's docstring) and accepts a
``seed`` in any form :func:`repro.rng.make_rng` understands.

Families provided (and where the paper needs them):

* :func:`random_regular_bipartite` — the Δ-regular graphs of §3.
* :func:`biregular` — unequal sides, constant degrees per side.
* :func:`near_regular` — client degrees spread over ``[Δ, ρΔ]``,
  exercising the almost-regularity allowance of Theorem 1.
* :func:`paper_extremal` — the "non-extremal example" after Theorem 1:
  most clients of degree ``Θ(log² n)``, a few of degree ``Θ(√n)``,
  a few servers of degree ``O(1)``.
* :func:`erdos_renyi_bipartite`, :func:`geometric_bipartite`,
  :func:`trust_subsets` — the application-flavoured topologies from the
  introduction (random, proximity-constrained, trust-restricted).
* :func:`complete_bipartite` — the dense case of prior work [4, 25].
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GraphConstructionError
from ..rng import make_rng
from .bipartite import BipartiteGraph

__all__ = [
    "random_regular_bipartite",
    "community_bipartite",
    "biregular",
    "near_regular",
    "paper_extremal",
    "erdos_renyi_bipartite",
    "geometric_bipartite",
    "trust_subsets",
    "complete_bipartite",
]

_MAX_RESTARTS = 50
_MAX_REPAIR_PASSES = 300


def _sample_distinct(rng: np.random.Generator, n: int, k: int) -> np.ndarray:
    """Sample ``k`` distinct integers from ``range(n)`` (sorted).

    Rejection sampling when ``k`` is small relative to ``n`` (the common
    case: neighborhoods are ``polylog(n)``); falls back to a partial
    permutation otherwise.  O(k) expected vs O(n) for ``rng.choice``.
    """
    if k > n:
        raise GraphConstructionError(f"cannot sample {k} distinct values from range({n})")
    if k == n:
        return np.arange(n, dtype=np.int64)
    if k > n // 8:
        return np.sort(rng.permutation(n)[:k].astype(np.int64))
    picked = np.unique(rng.integers(0, n, size=int(k * 1.3) + 8))
    while picked.size < k:
        extra = rng.integers(0, n, size=k)
        picked = np.unique(np.concatenate([picked, extra]))
    if picked.size > k:
        picked = rng.choice(picked, size=k, replace=False)
    return np.sort(picked.astype(np.int64))


def _repair_duplicates(pairs: np.ndarray, n_servers: int, rng: np.random.Generator) -> bool:
    """Make a configuration-model edge list simple via endpoint swaps.

    Swapping the server endpoints of two edges preserves every degree on
    both sides, so the repaired graph keeps the prescribed degree
    sequence exactly.  Returns True on success, False if the random walk
    failed to clear all duplicates within the pass budget (caller then
    restarts from a fresh pairing).
    """
    m = pairs.shape[0]
    for _ in range(_MAX_REPAIR_PASSES):
        keys = pairs[:, 0].astype(np.int64) * np.int64(n_servers) + pairs[:, 1]
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        dup_sorted = np.zeros(m, dtype=bool)
        if m > 1:
            dup_sorted[1:] = sk[1:] == sk[:-1]
        dup_idx = order[dup_sorted]
        if dup_idx.size == 0:
            return True
        partners = rng.integers(0, m, size=dup_idx.size)
        for i, j in zip(dup_idx.tolist(), partners.tolist()):
            if i == j:
                continue
            pairs[i, 1], pairs[j, 1] = pairs[j, 1], pairs[i, 1]
    return False


def _configuration_bipartite(
    client_degrees: np.ndarray,
    server_degrees: np.ndarray,
    rng: np.random.Generator,
    name: str,
) -> BipartiteGraph:
    """Exact-degree-sequence bipartite graph via the configuration model.

    Pairs client stubs with a random permutation of server stubs, then
    repairs parallel edges by degree-preserving swaps.  Restarts with a
    fresh permutation if the repair walk stalls.
    """
    client_degrees = np.asarray(client_degrees, dtype=np.int64)
    server_degrees = np.asarray(server_degrees, dtype=np.int64)
    if client_degrees.sum() != server_degrees.sum():
        raise GraphConstructionError(
            f"degree sums differ: clients {int(client_degrees.sum())} vs "
            f"servers {int(server_degrees.sum())}"
        )
    if np.any(client_degrees < 0) or np.any(server_degrees < 0):
        raise GraphConstructionError("degrees must be non-negative")
    if np.any(client_degrees > server_degrees.size):
        raise GraphConstructionError("a client degree exceeds the number of servers")
    if np.any(server_degrees > client_degrees.size):
        raise GraphConstructionError("a server degree exceeds the number of clients")
    n_clients, n_servers = client_degrees.size, server_degrees.size
    total = int(client_degrees.sum())
    # Dense regime: the swap-repair walk stalls when few non-edges remain.
    # Realize the complement sequence (sparse) and invert — complementation
    # maps degree d to (other side size - d) exactly.
    if total > (n_clients * n_servers) // 2 and total < n_clients * n_servers:
        if n_clients * n_servers > (1 << 26):
            raise GraphConstructionError(
                "dense degree sequence too large for complementation "
                f"({n_clients}×{n_servers}); reduce density or size"
            )
        comp = _configuration_bipartite(
            n_servers - client_degrees, n_clients - server_degrees, rng, name="tmp-complement"
        )
        mask = np.ones((n_clients, n_servers), dtype=bool)
        e = comp.edges()
        mask[e[:, 0], e[:, 1]] = False
        rows, cols = np.nonzero(mask)
        return BipartiteGraph.from_edges(
            n_clients, n_servers, np.column_stack([rows, cols]), name=name, validate=False
        )
    if total == n_clients * n_servers:
        g = complete_bipartite(n_clients, n_servers)
        return BipartiteGraph(
            n_clients=g.n_clients,
            n_servers=g.n_servers,
            client_indptr=g.client_indptr,
            client_indices=g.client_indices,
            server_indptr=g.server_indptr,
            server_indices=g.server_indices,
            name=name,
        )
    client_stubs = np.repeat(np.arange(n_clients, dtype=np.int64), client_degrees)
    server_stubs = np.repeat(np.arange(n_servers, dtype=np.int64), server_degrees)
    for _ in range(_MAX_RESTARTS):
        pairs = np.column_stack([client_stubs, rng.permutation(server_stubs)])
        if _repair_duplicates(pairs, n_servers, rng):
            return BipartiteGraph.from_edges(n_clients, n_servers, pairs, name=name)
    raise GraphConstructionError(
        "configuration model failed to produce a simple graph "
        f"(n_clients={n_clients}, n_servers={n_servers}); degrees too close to complete?"
    )


def random_regular_bipartite(n: int, degree: int, seed=None) -> BipartiteGraph:
    """Random Δ-regular bipartite graph on ``n`` clients and ``n`` servers.

    This is the topology of §3 (the regular case of Theorem 1): every
    client and every server has degree exactly ``degree``.
    """
    if n <= 0:
        raise GraphConstructionError("n must be positive")
    if not (0 < degree <= n):
        raise GraphConstructionError(f"degree must be in [1, n]; got {degree} with n={n}")
    rng = make_rng(seed)
    deg = np.full(n, degree, dtype=np.int64)
    # Dense sequences (degree > n/2, including the complete graph) are
    # handled inside _configuration_bipartite via complementation.
    return _configuration_bipartite(deg, deg, rng, name=f"regular(n={n},deg={degree})")


def biregular(n_clients: int, n_servers: int, client_degree: int, seed=None) -> BipartiteGraph:
    """Biregular graph: every client has degree ``client_degree``.

    Server degrees are as equal as the divisibility allows: all equal to
    ``n_clients*client_degree / n_servers`` when that is an integer, and
    differing by at most one otherwise (the remainder is spread over a
    random subset of servers).
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0 < client_degree <= n_servers):
        raise GraphConstructionError("client_degree must be in [1, n_servers]")
    rng = make_rng(seed)
    total = n_clients * client_degree
    base, rem = divmod(total, n_servers)
    if base >= n_clients and rem:
        raise GraphConstructionError("server degrees would exceed the number of clients")
    sdeg = np.full(n_servers, base, dtype=np.int64)
    if rem:
        bump = rng.choice(n_servers, size=rem, replace=False)
        sdeg[bump] += 1
    cdeg = np.full(n_clients, client_degree, dtype=np.int64)
    return _configuration_bipartite(
        cdeg, sdeg, rng, name=f"biregular(nc={n_clients},ns={n_servers},cdeg={client_degree})"
    )


def near_regular(
    n: int,
    degree_lo: int,
    degree_hi: int,
    seed=None,
) -> BipartiteGraph:
    """Almost-regular graph: client degrees uniform in ``[degree_lo, degree_hi]``.

    Server degrees are balanced to match the (random) total, so the
    almost-regularity ratio ``Δ_max(S)/Δ_min(C)`` stays close to
    ``degree_hi/degree_lo`` — the ρ knob of Theorem 1.
    """
    if n <= 0:
        raise GraphConstructionError("n must be positive")
    if not (0 < degree_lo <= degree_hi <= n):
        raise GraphConstructionError("need 0 < degree_lo <= degree_hi <= n")
    rng = make_rng(seed)
    cdeg = rng.integers(degree_lo, degree_hi + 1, size=n).astype(np.int64)
    total = int(cdeg.sum())
    base, rem = divmod(total, n)
    sdeg = np.full(n, base, dtype=np.int64)
    if rem:
        bump = rng.choice(n, size=rem, replace=False)
        sdeg[bump] += 1
    return _configuration_bipartite(
        cdeg, sdeg, rng, name=f"near_regular(n={n},lo={degree_lo},hi={degree_hi})"
    )


def paper_extremal(n: int, eta: float = 1.0, seed=None) -> BipartiteGraph:
    """The degree-variance example discussed after Theorem 1.

    Builds a graph where

    * most clients have the minimal degree ``Δ_min = ⌈η log² n⌉``,
    * ``⌈log n⌉`` *heavy* clients have degree ``⌈√n⌉``,
    * ``⌈log n⌉`` *weak* servers have degree ``O(1)`` (they appear in
      only a couple of neighborhoods),
    * every other server has degree ``Θ(log² n)``.

    The theorem's hypotheses hold: ``Δ_min(C) ≥ η log² n`` and
    ``Δ_max(S)/Δ_min(C)`` is bounded by a constant (the construction
    balances normal-server degrees within a factor ~2 of ``Δ_min``).
    """
    if n < 16:
        raise GraphConstructionError("paper_extremal needs n >= 16")
    rng = make_rng(seed)
    log_n = math.log(n)
    d_min = max(2, math.ceil(eta * log_n * log_n))
    d_heavy = min(n, math.ceil(math.sqrt(n)))
    k = max(1, math.ceil(log_n))  # number of heavy clients and of weak servers
    if d_min > n or d_heavy > n:
        raise GraphConstructionError("n too small for the requested eta")

    cdeg = np.full(n, d_min, dtype=np.int64)
    cdeg[:k] = max(d_heavy, d_min)
    total = int(cdeg.sum())

    # Weak servers receive a constant degree; the remaining mass is
    # spread nearly evenly over normal servers.
    weak_deg = 2
    n_weak = k
    rest = total - weak_deg * n_weak
    n_normal = n - n_weak
    base, rem = divmod(rest, n_normal)
    if base >= n:
        raise GraphConstructionError("degree mass too large; reduce eta")
    sdeg = np.empty(n, dtype=np.int64)
    sdeg[:n_weak] = weak_deg
    sdeg[n_weak:] = base
    if rem:
        bump = n_weak + rng.choice(n_normal, size=rem, replace=False)
        sdeg[bump] += 1
    g = _configuration_bipartite(cdeg, sdeg, rng, name=f"paper_extremal(n={n},eta={eta})")
    return g


def erdos_renyi_bipartite(
    n_clients: int,
    n_servers: int,
    p: float,
    seed=None,
) -> BipartiteGraph:
    """Bipartite Erdős–Rényi graph: each (client, server) edge present w.p. ``p``.

    Implemented per client as a Binomial degree draw followed by a
    distinct-server sample, which is exactly equivalent and avoids an
    O(n²) dense mask.
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0.0 <= p <= 1.0):
        raise GraphConstructionError(f"p must be in [0, 1]; got {p}")
    rng = make_rng(seed)
    degrees = rng.binomial(n_servers, p, size=n_clients)
    edges: list[np.ndarray] = []
    for v in range(n_clients):
        k = int(degrees[v])
        if k == 0:
            continue
        nbrs = _sample_distinct(rng, n_servers, k)
        edges.append(np.column_stack([np.full(k, v, dtype=np.int64), nbrs]))
    pairs = np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64)
    return BipartiteGraph.from_edges(
        n_clients, n_servers, pairs, name=f"er(nc={n_clients},ns={n_servers},p={p:g})"
    )


def geometric_bipartite(
    n_clients: int,
    n_servers: int,
    radius: float,
    seed=None,
    torus: bool = True,
) -> BipartiteGraph:
    """Proximity graph: points in the unit square, edge iff within ``radius``.

    Models the introduction's "clients and servers are placed over a
    metric space … only proximity-feasible interactions".  With
    ``torus=True`` distances wrap, so expected degrees are uniform
    ``≈ n·π·radius²`` with no boundary effects.

    Uses a cell grid so the pair search is ``O(n · expected_degree)``
    rather than ``O(n²)``.
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0.0 < radius <= math.sqrt(2.0)):
        raise GraphConstructionError("radius must be in (0, sqrt(2)]")
    rng = make_rng(seed)
    cpos = rng.random((n_clients, 2))
    spos = rng.random((n_servers, 2))
    ncell = max(1, int(1.0 / radius))
    cell_w = 1.0 / ncell

    def cell_of(pts: np.ndarray) -> np.ndarray:
        return np.minimum((pts / cell_w).astype(np.int64), ncell - 1)

    scell = cell_of(spos)
    buckets: dict[tuple[int, int], np.ndarray] = {}
    keys = scell[:, 0] * ncell + scell[:, 1]
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    starts = np.searchsorted(sk, np.arange(ncell * ncell))
    ends = np.searchsorted(sk, np.arange(ncell * ncell) + 1)
    for cell in range(ncell * ncell):
        if ends[cell] > starts[cell]:
            buckets[(cell // ncell, cell % ncell)] = order[starts[cell] : ends[cell]]

    r2 = radius * radius
    edges: list[np.ndarray] = []
    ccell = cell_of(cpos)
    for v in range(n_clients):
        cx, cy = int(ccell[v, 0]), int(ccell[v, 1])
        cand: list[np.ndarray] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                gx, gy = cx + dx, cy + dy
                if torus:
                    gx %= ncell
                    gy %= ncell
                elif not (0 <= gx < ncell and 0 <= gy < ncell):
                    continue
                b = buckets.get((gx, gy))
                if b is not None:
                    cand.append(b)
        if not cand:
            continue
        cidx = np.unique(np.concatenate(cand))
        diff = spos[cidx] - cpos[v]
        if torus:
            diff = np.abs(diff)
            diff = np.minimum(diff, 1.0 - diff)
        hit = cidx[(diff * diff).sum(axis=1) <= r2]
        if hit.size:
            edges.append(np.column_stack([np.full(hit.size, v, dtype=np.int64), hit]))
    pairs = np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64)
    return BipartiteGraph.from_edges(
        n_clients,
        n_servers,
        pairs,
        name=f"geometric(nc={n_clients},ns={n_servers},r={radius:g},torus={torus})",
    )


def trust_subsets(n_clients: int, n_servers: int, k: int, seed=None) -> BipartiteGraph:
    """Godfrey's random-cluster model: each client trusts ``k`` random servers.

    Each neighborhood ``N(v)`` is a uniform ``k``-subset of the servers,
    independently per client — the "fixed subset of trusted servers"
    scenario from the introduction and from [17].
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    if not (0 < k <= n_servers):
        raise GraphConstructionError("k must be in [1, n_servers]")
    rng = make_rng(seed)
    edges = np.empty((n_clients * k, 2), dtype=np.int64)
    for v in range(n_clients):
        edges[v * k : (v + 1) * k, 0] = v
        edges[v * k : (v + 1) * k, 1] = _sample_distinct(rng, n_servers, k)
    return BipartiteGraph.from_edges(
        n_clients, n_servers, edges, name=f"trust(nc={n_clients},ns={n_servers},k={k})"
    )


def community_bipartite(
    n: int,
    n_groups: int,
    k_within: int,
    k_across: int,
    seed=None,
) -> BipartiteGraph:
    """Community-structured trust graph: correlated neighborhoods.

    Clients and servers are split into ``n_groups`` equal communities;
    each client trusts ``k_within`` servers of its own community and
    ``k_across`` servers elsewhere.  Unlike :func:`trust_subsets`, the
    neighborhoods of same-community clients overlap heavily, so burned
    servers are *shared* — the stochastic-dependence structure the
    paper's analysis must cope with (§1.2), in concentrated form.  Used
    as an adversarial family in the invariant tests.
    """
    if n <= 0 or n_groups <= 0:
        raise GraphConstructionError("n and n_groups must be positive")
    if n % n_groups != 0:
        raise GraphConstructionError(f"n={n} must be divisible by n_groups={n_groups}")
    group = n // n_groups
    if not (0 <= k_within <= group):
        raise GraphConstructionError(f"k_within must be in [0, {group}]")
    if not (0 <= k_across <= n - group):
        raise GraphConstructionError(f"k_across must be in [0, {n - group}]")
    if k_within + k_across == 0:
        raise GraphConstructionError("every client needs at least one trusted server")
    rng = make_rng(seed)
    edges: list[np.ndarray] = []
    all_servers = np.arange(n, dtype=np.int64)
    for v in range(n):
        gidx = v // group
        own = all_servers[gidx * group : (gidx + 1) * group]
        rows = []
        if k_within:
            rows.append(own[_sample_distinct(rng, group, k_within)])
        if k_across:
            others = np.concatenate(
                [all_servers[: gidx * group], all_servers[(gidx + 1) * group :]]
            )
            rows.append(others[_sample_distinct(rng, others.size, k_across)])
        nbrs = np.concatenate(rows)
        edges.append(np.column_stack([np.full(nbrs.size, v, dtype=np.int64), nbrs]))
    pairs = np.concatenate(edges)
    return BipartiteGraph.from_edges(
        n,
        n,
        pairs,
        name=f"community(n={n},groups={n_groups},kin={k_within},kout={k_across})",
    )


def complete_bipartite(n_clients: int, n_servers: int) -> BipartiteGraph:
    """The complete bipartite graph — the classic balls-into-bins setting.

    This is the dense topology of the prior work the paper builds on
    ([25], [4] with Δ = n); useful as the reference point in the degree
    sweep (experiment E7).
    """
    if n_clients <= 0 or n_servers <= 0:
        raise GraphConstructionError("side sizes must be positive")
    rows = np.repeat(np.arange(n_clients, dtype=np.int64), n_servers)
    cols = np.tile(np.arange(n_servers, dtype=np.int64), n_clients)
    pairs = np.column_stack([rows, cols])
    return BipartiteGraph.from_edges(
        n_clients, n_servers, pairs, name=f"complete(nc={n_clients},ns={n_servers})", validate=False
    )
