"""Serialization for :class:`~repro.graphs.bipartite.BipartiteGraph`.

Two formats:

* ``.npz`` — lossless and fast (the CSR arrays verbatim); the format the
  experiment harness uses to pin workloads.
* edge-list text — one ``client server`` pair per line with a small
  header; interoperable with external tools.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import GraphValidationError
from .bipartite import BipartiteGraph

__all__ = ["save_npz", "load_npz", "save_edgelist", "load_edgelist"]

_FORMAT_VERSION = 1


def save_npz(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` to ``path`` in the library's npz format."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_clients=np.int64(graph.n_clients),
        n_servers=np.int64(graph.n_servers),
        client_indptr=graph.client_indptr,
        client_indices=graph.client_indices,
        server_indptr=graph.server_indptr,
        server_indices=graph.server_indices,
        name=np.str_(graph.name),
    )


def load_npz(path: str | os.PathLike) -> BipartiteGraph:
    """Load a graph written by :func:`save_npz`; validates on load."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphValidationError(f"unsupported graph file version {version}")
        g = BipartiteGraph(
            n_clients=int(data["n_clients"]),
            n_servers=int(data["n_servers"]),
            client_indptr=data["client_indptr"].astype(np.int64),
            client_indices=data["client_indices"].astype(np.int64),
            server_indptr=data["server_indptr"].astype(np.int64),
            server_indices=data["server_indices"].astype(np.int64),
            name=str(data["name"]),
        )
    g.validate()
    return g


def save_edgelist(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Write a plain-text edge list with a ``# repro-bipartite`` header."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# repro-bipartite v{_FORMAT_VERSION}\n")
        fh.write(f"# n_clients={graph.n_clients} n_servers={graph.n_servers}\n")
        fh.write(f"# name={graph.name}\n")
        for v, u in graph.edges():
            fh.write(f"{int(v)} {int(u)}\n")


def load_edgelist(path: str | os.PathLike) -> BipartiteGraph:
    """Read a graph written by :func:`save_edgelist`."""
    n_clients = n_servers = None
    name = "bipartite"
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("# ").strip()
                if body.startswith("n_clients="):
                    parts = dict(tok.split("=", 1) for tok in body.split())
                    n_clients = int(parts["n_clients"])
                    n_servers = int(parts["n_servers"])
                elif body.startswith("name="):
                    name = body.split("=", 1)[1]
                continue
            a, b = line.split()
            edges.append((int(a), int(b)))
    if n_clients is None or n_servers is None:
        raise GraphValidationError(f"{path}: missing size header line")
    return BipartiteGraph.from_edges(n_clients, n_servers, edges, name=name)
