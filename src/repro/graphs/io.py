"""Serialization and on-disk caching for :class:`~repro.graphs.bipartite.BipartiteGraph`.

Three facilities:

* ``.npz`` — lossless and fast (the CSR arrays verbatim); the format the
  experiment harness uses to pin workloads.
* edge-list text — one ``client server`` pair per line with a small
  header; interoperable with external tools.
* a content-addressed **graph cache**: :func:`cached_graph` keys a
  generator call by ``(family, params, seed)`` so repeated sweeps over
  the same topology pay construction once and load the CSR arrays
  straight from disk afterwards.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from ..errors import GraphValidationError
from .bipartite import BipartiteGraph

__all__ = [
    "save_npz",
    "load_npz",
    "save_edgelist",
    "load_edgelist",
    "graph_cache_key",
    "cached_graph",
]

_FORMAT_VERSION = 1


def save_npz(graph: BipartiteGraph, path: str | os.PathLike, *, compress: bool = True) -> None:
    """Write ``graph`` to ``path`` in the library's npz format.

    ``compress=False`` trades disk for speed — the graph cache uses it
    because zip-deflating 10⁷-edge CSR arrays costs more than the
    generator being cached.
    """
    writer = np.savez_compressed if compress else np.savez
    writer(
        path,
        version=np.int64(_FORMAT_VERSION),
        n_clients=np.int64(graph.n_clients),
        n_servers=np.int64(graph.n_servers),
        client_indptr=graph.client_indptr,
        client_indices=graph.client_indices,
        server_indptr=graph.server_indptr,
        server_indices=graph.server_indices,
        name=np.str_(graph.name),
    )


def load_npz(path: str | os.PathLike, *, validate: bool = True) -> BipartiteGraph:
    """Load a graph written by :func:`save_npz`; validates on load.

    ``validate=False`` skips the full invariant check (the graph cache
    uses it for graphs this library wrote itself; foreign files should
    keep the default).
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphValidationError(f"unsupported graph file version {version}")
        g = BipartiteGraph(
            n_clients=int(data["n_clients"]),
            n_servers=int(data["n_servers"]),
            client_indptr=data["client_indptr"].astype(np.int64),
            client_indices=data["client_indices"].astype(np.int64),
            server_indptr=data["server_indptr"].astype(np.int64),
            server_indices=data["server_indices"].astype(np.int64),
            name=str(data["name"]),
        )
    if validate:
        g.validate()
    return g


def save_edgelist(graph: BipartiteGraph, path: str | os.PathLike) -> None:
    """Write a plain-text edge list with a ``# repro-bipartite`` header."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# repro-bipartite v{_FORMAT_VERSION}\n")
        fh.write(f"# n_clients={graph.n_clients} n_servers={graph.n_servers}\n")
        fh.write(f"# name={graph.name}\n")
        for v, u in graph.edges():
            fh.write(f"{int(v)} {int(u)}\n")


def load_edgelist(path: str | os.PathLike) -> BipartiteGraph:
    """Read a graph written by :func:`save_edgelist`."""
    n_clients = n_servers = None
    name = "bipartite"
    edges: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("# ").strip()
                if body.startswith("n_clients="):
                    parts = dict(tok.split("=", 1) for tok in body.split())
                    n_clients = int(parts["n_clients"])
                    n_servers = int(parts["n_servers"])
                elif body.startswith("name="):
                    name = body.split("=", 1)[1]
                continue
            a, b = line.split()
            edges.append((int(a), int(b)))
    if n_clients is None or n_servers is None:
        raise GraphValidationError(f"{path}: missing size header line")
    return BipartiteGraph.from_edges(n_clients, n_servers, edges, name=name)


# ---------------------------------------------------------------------------
# On-disk graph cache
# ---------------------------------------------------------------------------


def _canonical_seed(seed) -> object | None:
    """A JSON-stable token for a seed, or ``None`` when not cacheable.

    Integers and :class:`~numpy.random.SeedSequence` (the forms the
    library's spawning discipline produces) are canonical; ``None`` and
    live ``Generator`` objects draw from ambient state, so a cache hit
    would silently pin what should be fresh randomness — those are
    reported as uncacheable and the caller builds normally.
    """
    if isinstance(seed, (int, np.integer)):
        return ["int", int(seed)]
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if entropy is None:  # OS entropy: not reproducible, not cacheable
            return None
        if isinstance(entropy, (int, np.integer)):
            entropy = [int(entropy)]
        else:
            entropy = [int(e) for e in entropy]
        return ["ss", entropy, [int(k) for k in seed.spawn_key]]
    return None


def graph_cache_key(family: str, params: Mapping, seed) -> str | None:
    """Content key for ``(family, params, seed)``, or ``None`` if uncacheable.

    Params must be JSON-serializable (numbers, strings, bools) — the
    generator signatures only take those.  The key is stable across
    processes and sessions.
    """
    tok = _canonical_seed(seed)
    if tok is None:
        return None
    try:
        canon = json.dumps(
            {"family": family, "params": dict(params), "seed": tok, "v": _FORMAT_VERSION},
            sort_keys=True,
        )
    except TypeError:
        return None
    digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()[:20]
    return f"{family}-{digest}"


def cached_graph(
    builder: Callable[..., BipartiteGraph],
    family: str,
    params: Mapping,
    seed,
    cache_dir: str | os.PathLike | None,
) -> BipartiteGraph:
    """Build (or load) the graph ``builder(**params, seed=seed)``.

    With a ``cache_dir`` and a cacheable seed, the first call stores the
    CSR arrays as an uncompressed ``.npz`` keyed by ``(family, params,
    seed)`` and every later call maps them back in — repeated sweeps
    over one topology pay construction once.  Writes are atomic
    (tmp-file + rename), so concurrent pool workers can share one cache
    directory; load skips re-validation (this library wrote the file).

    Uncacheable seeds (``None``, live generators) silently fall through
    to a plain build.

    Cache entries are integrity-checked: each ``.npz`` gets a
    ``.npz.sha256`` sidecar at write time, verified on every hit.  A
    truncated or corrupt entry (checksum mismatch, unreadable file) is
    evicted with a warning and the graph regenerated — a torn cache
    (e.g. a worker SIGKILLed mid-write on a non-atomic filesystem, or
    bit rot on scratch storage) costs one rebuild, never a crashed
    sweep.
    """
    key = graph_cache_key(family, params, seed) if cache_dir is not None else None
    if key is None:
        return builder(**params, seed=seed)
    root = Path(cache_dir)
    path = root / f"{key}.npz"
    sidecar = root / f"{key}.npz.sha256"
    if path.exists():
        graph = _load_cached(path, sidecar)
        if graph is not None:
            return graph
        path.unlink(missing_ok=True)
        sidecar.unlink(missing_ok=True)
    graph = builder(**params, seed=seed)
    root.mkdir(parents=True, exist_ok=True)
    tmp = root / f".{key}.{os.getpid()}.tmp.npz"
    try:
        save_npz(graph, tmp, compress=False)
        digest = _file_sha256(tmp)
        os.replace(tmp, path)
        tmp_sidecar = root / f".{key}.{os.getpid()}.tmp.sha256"
        tmp_sidecar.write_text(digest + "\n", encoding="utf-8")
        os.replace(tmp_sidecar, sidecar)
    finally:
        tmp.unlink(missing_ok=True)
    return graph


def _file_sha256(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _load_cached(path: Path, sidecar: Path) -> BipartiteGraph | None:
    """Load a cache entry if it passes its integrity checks, else ``None``.

    A missing sidecar (an entry written before checksums existed) skips
    the checksum but still guards the load itself; any failure warns
    and reports the entry unusable so the caller evicts + regenerates.
    """
    if sidecar.exists():
        expected = sidecar.read_text(encoding="utf-8").strip()
        actual = _file_sha256(path)
        if actual != expected:
            warnings.warn(
                f"graph cache entry {path} failed its checksum "
                f"(expected {expected[:12]}…, got {actual[:12]}…); regenerating",
                stacklevel=3,
            )
            return None
    try:
        return load_npz(path, validate=False)
    except Exception as exc:
        warnings.warn(
            f"graph cache entry {path} is unreadable ({exc}); regenerating",
            stacklevel=3,
        )
        return None
