"""Bipartite client-server graph substrate.

The paper's model is a bipartite graph ``G((C, S), E)`` where clients
may only contact servers in their neighborhood.  This subpackage
provides the immutable CSR representation (:class:`BipartiteGraph`),
the generator zoo used by the experiments, structural property reports,
and serialization.
"""

from .bipartite import BipartiteGraph
from .families import build_point_graph, canonical_degree, family_spec
from .generators import (
    biregular,
    community_bipartite,
    complete_bipartite,
    erdos_renyi_bipartite,
    geometric_bipartite,
    near_regular,
    paper_extremal,
    random_regular_bipartite,
    trust_subsets,
)
from .properties import (
    GraphReport,
    almost_regularity_ratio,
    degree_report,
    eta_for,
    theorem1_hypotheses,
)

__all__ = [
    "BipartiteGraph",
    "random_regular_bipartite",
    "community_bipartite",
    "biregular",
    "erdos_renyi_bipartite",
    "geometric_bipartite",
    "trust_subsets",
    "near_regular",
    "paper_extremal",
    "complete_bipartite",
    "canonical_degree",
    "family_spec",
    "build_point_graph",
    "GraphReport",
    "degree_report",
    "almost_regularity_ratio",
    "eta_for",
    "theorem1_hypotheses",
]
