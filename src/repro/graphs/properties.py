"""Structural property reports and Theorem-1 hypothesis checks.

The paper's guarantee is parameterized by three structural quantities
(§2.1 and Theorem 1):

* ``Δ_min(C)`` — minimum client degree,
* ``Δ_max(S)`` — maximum server degree,
* the *almost-regularity ratio* ``ρ = Δ_max(S)/Δ_min(C)``,
* the density constant ``η`` with ``Δ_min(C) ≥ η log² n``.

This module computes them and packages a human-readable report used by
the experiment tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteGraph

__all__ = [
    "GraphReport",
    "degree_report",
    "almost_regularity_ratio",
    "eta_for",
    "theorem1_hypotheses",
]


@dataclass(frozen=True)
class GraphReport:
    """Summary of the degree structure of a bipartite graph.

    ``eta`` and ``rho`` are the constants of Theorem 1 *realized by this
    graph* (so the theorem applies with any ``η ≤ eta`` and ``ρ ≥ rho``).
    ``eta`` is ``inf`` for graphs of fewer than 2 clients (log² n = 0).
    """

    n_clients: int
    n_servers: int
    n_edges: int
    client_degree_min: int
    client_degree_max: int
    client_degree_mean: float
    server_degree_min: int
    server_degree_max: int
    server_degree_mean: float
    rho: float
    eta: float
    isolated_clients: int
    isolated_servers: int

    def satisfies_theorem1(self, eta: float, rho: float) -> bool:
        """Whether the graph meets ``Δ_min(C) ≥ η log² n`` and ratio ≤ ρ."""
        n = max(self.n_clients, self.n_servers)
        if n < 2:
            return self.client_degree_min > 0
        need = eta * math.log(n) ** 2
        return self.client_degree_min >= need and self.rho <= rho

    def as_dict(self) -> dict:
        """Plain-dict view for table/CSV output."""
        return {
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "n_edges": self.n_edges,
            "client_deg_min": self.client_degree_min,
            "client_deg_max": self.client_degree_max,
            "client_deg_mean": round(self.client_degree_mean, 3),
            "server_deg_min": self.server_degree_min,
            "server_deg_max": self.server_degree_max,
            "server_deg_mean": round(self.server_degree_mean, 3),
            "rho": round(self.rho, 4) if math.isfinite(self.rho) else self.rho,
            "eta": round(self.eta, 4) if math.isfinite(self.eta) else self.eta,
            "isolated_clients": self.isolated_clients,
            "isolated_servers": self.isolated_servers,
        }


def degree_report(graph: BipartiteGraph) -> GraphReport:
    """Compute the full :class:`GraphReport` for ``graph``."""
    cdeg = graph.client_degrees
    sdeg = graph.server_degrees
    cmin = int(cdeg.min()) if cdeg.size else 0
    smax = int(sdeg.max()) if sdeg.size else 0
    return GraphReport(
        n_clients=graph.n_clients,
        n_servers=graph.n_servers,
        n_edges=graph.n_edges,
        client_degree_min=cmin,
        client_degree_max=int(cdeg.max()) if cdeg.size else 0,
        client_degree_mean=float(cdeg.mean()) if cdeg.size else 0.0,
        server_degree_min=int(sdeg.min()) if sdeg.size else 0,
        server_degree_max=smax,
        server_degree_mean=float(sdeg.mean()) if sdeg.size else 0.0,
        rho=almost_regularity_ratio(graph),
        eta=eta_for(graph),
        isolated_clients=int(np.sum(cdeg == 0)),
        isolated_servers=int(np.sum(sdeg == 0)),
    )


def almost_regularity_ratio(graph: BipartiteGraph) -> float:
    """``ρ = Δ_max(S) / Δ_min(C)`` (``inf`` if some client is isolated).

    Theorem 1 requires this to be bounded by a constant.  Note the paper
    observes ``Δ_min(C) ≤ Δ_max(S)`` always (a counting argument), so a
    finite value is ≥ 1.
    """
    dmin = graph.degree_min_clients()
    if dmin == 0:
        return math.inf
    return graph.degree_max_servers() / dmin


def eta_for(graph: BipartiteGraph) -> float:
    """Largest ``η`` such that ``Δ_min(C) ≥ η log² n`` holds for this graph.

    ``n`` is taken as ``max(|C|, |S|)``; returns ``inf`` when ``log² n``
    is zero (n ≤ 1... strictly n < 2) so degenerate graphs never fail the
    check spuriously.
    """
    n = max(graph.n_clients, graph.n_servers)
    if n < 2:
        return math.inf
    denom = math.log(n) ** 2
    return graph.degree_min_clients() / denom


def theorem1_hypotheses(graph: BipartiteGraph, eta: float, rho: float) -> tuple[bool, str]:
    """Check Theorem 1's hypotheses; return (ok, human-readable reason).

    Used by experiment runners to annotate which sweep points are inside
    versus outside the theorem's regime (e.g. the Δ = o(log² n) rows of
    experiment E7 are *expected* to be outside).
    """
    rep = degree_report(graph)
    n = max(graph.n_clients, graph.n_servers)
    if rep.isolated_clients:
        return False, f"{rep.isolated_clients} isolated clients (cannot terminate)"
    if n >= 2:
        need = eta * math.log(n) ** 2
        if rep.client_degree_min < need:
            return (
                False,
                f"Δ_min(C)={rep.client_degree_min} < η·log²n={need:.1f} (outside regime)",
            )
    if rep.rho > rho:
        return False, f"ρ={rep.rho:.2f} > {rho} (too irregular)"
    return True, "hypotheses satisfied"
