"""Immutable CSR bipartite graph used by every protocol and metric.

Design notes
------------
The hot loops of the simulation index client neighborhoods millions of
times per run, so the representation is two flat CSR adjacency
structures (client→server and server→client) built once and never
mutated.  Multi-edges are disallowed: Algorithm 1 samples *with
replacement from the neighbor set*, so parallel edges would silently
bias the destination distribution.

Clients are indexed ``0..n_clients-1`` and servers ``0..n_servers-1``
in separate index spaces (the paper's local-labels assumption means no
global node ids are needed; separate spaces make that explicit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import GraphValidationError

__all__ = ["BipartiteGraph"]


def _build_csr(n_src: int, n_dst: int, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices) for src→dst adjacency from an edge array.

    ``pairs`` is an ``(m, 2)`` int array of (src, dst).  Neighbor lists
    come out sorted by dst index, which makes tape-replay order
    deterministic and binary-searchable.
    """
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    srt = pairs[order]
    counts = np.bincount(srt[:, 0], minlength=n_src)
    indptr = np.zeros(n_src + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, np.ascontiguousarray(srt[:, 1].astype(np.int64))


def _rows_strictly_sorted(indptr: np.ndarray, indices: np.ndarray) -> bool:
    """True iff every CSR row is strictly increasing (sorted, no duplicates)."""
    if indices.size < 2:
        return True
    gaps = np.diff(indices)
    # Gap i sits between indices[i] and indices[i+1]; it is within a row
    # unless position i+1 starts a new row.  Empty rows repeat indptr
    # values, which just re-clears the same position.
    within = np.ones(indices.size - 1, dtype=bool)
    starts = indptr[1:-1]
    starts = starts[(starts > 0) & (starts < indices.size)]
    within[starts - 1] = False
    return bool(np.all(gaps[within] > 0))


def _transpose_csr(
    n_src: int, n_dst: int, indptr: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reverse a CSR adjacency: dst→src (indptr, indices), rows sorted.

    Uses scipy's compiled COO→CSR counting sort (O(m), ~3× faster than a
    numpy stable argsort at 10⁷ edges).  It is stable in input order, so
    with forward rows sorted src-major the reversed rows come out
    strictly sorted whenever the forward graph was simple.
    """
    nnz = indices.size
    if nnz == 0:
        return np.zeros(n_dst + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    rows = np.repeat(np.arange(n_src, dtype=np.int64), np.diff(indptr))
    rev = sp.coo_matrix(
        (np.empty(nnz, dtype=np.int8), (indices, rows)), shape=(n_dst, n_src)
    ).tocsr()
    return rev.indptr.astype(np.int64), rev.indices.astype(np.int64)


@dataclass(frozen=True)
class BipartiteGraph:
    """An immutable bipartite client-server graph in dual-CSR form.

    Attributes
    ----------
    n_clients, n_servers:
        Sizes of the two sides.  The paper assumes ``n_clients ==
        n_servers == n`` but nothing in the protocols needs that, so the
        library supports unequal sides.
    client_indptr, client_indices:
        CSR adjacency client→server: the neighbors of client ``v`` are
        ``client_indices[client_indptr[v]:client_indptr[v+1]]``, sorted.
    server_indptr, server_indices:
        CSR adjacency server→client, derived from the same edge set.
    """

    n_clients: int
    n_servers: int
    client_indptr: np.ndarray
    client_indices: np.ndarray
    server_indptr: np.ndarray
    server_indices: np.ndarray
    name: str = field(default="bipartite", compare=False)

    # -- constructors --------------------------------------------------

    @staticmethod
    def from_edges(
        n_clients: int,
        n_servers: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        *,
        name: str = "bipartite",
        validate: bool = True,
    ) -> "BipartiteGraph":
        """Build a graph from (client, server) pairs.

        Raises :class:`GraphValidationError` on out-of-range endpoints or
        duplicate edges.
        """
        if n_clients < 0 or n_servers < 0:
            raise GraphValidationError("side sizes must be non-negative")
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphValidationError(f"edges must be (m, 2); got shape {arr.shape}")
        if validate and arr.size:
            if arr[:, 0].min() < 0 or arr[:, 0].max() >= n_clients:
                raise GraphValidationError("client index out of range")
            if arr[:, 1].min() < 0 or arr[:, 1].max() >= n_servers:
                raise GraphValidationError("server index out of range")
            keys = arr[:, 0].astype(np.int64) * np.int64(max(n_servers, 1)) + arr[:, 1]
            if np.unique(keys).size != keys.size:
                raise GraphValidationError("duplicate edges are not allowed (sampling bias)")
        c_indptr, c_indices = _build_csr(n_clients, n_servers, arr)
        s_indptr, s_indices = _build_csr(n_servers, n_clients, arr[:, ::-1])
        return BipartiteGraph(
            n_clients=n_clients,
            n_servers=n_servers,
            client_indptr=c_indptr,
            client_indices=c_indices,
            server_indptr=s_indptr,
            server_indices=s_indices,
            name=name,
        )

    @staticmethod
    def from_csr(
        n_clients: int,
        n_servers: int,
        client_indptr: np.ndarray,
        client_indices: np.ndarray,
        *,
        name: str = "bipartite",
        validate: bool = True,
    ) -> "BipartiteGraph":
        """Build a graph directly from a client→server CSR adjacency.

        The fast path for vectorized generators: rows must already be
        strictly sorted (sorted neighbor ids, no parallel edges), so no
        edge-list round-trip and no re-sort of the forward direction is
        needed — only the reverse adjacency is derived (one stable
        argsort).  With ``validate=True`` the CSR invariants are checked
        with whole-array operations (still no Python loop).
        """
        indptr = np.ascontiguousarray(client_indptr, dtype=np.int64)
        indices = np.ascontiguousarray(client_indices, dtype=np.int64)
        if n_clients < 0 or n_servers < 0:
            raise GraphValidationError("side sizes must be non-negative")
        if indptr.shape != (n_clients + 1,):
            raise GraphValidationError(
                f"client_indptr must have shape ({n_clients + 1},); got {indptr.shape}"
            )
        if validate:
            if indptr[0] != 0 or np.any(np.diff(indptr) < 0) or indptr[-1] != indices.size:
                raise GraphValidationError("malformed client_indptr")
            if indices.size and (indices.min() < 0 or indices.max() >= n_servers):
                raise GraphValidationError("server index out of range")
            if not _rows_strictly_sorted(indptr, indices):
                raise GraphValidationError(
                    "client rows must be strictly sorted (no parallel edges)"
                )
        s_indptr, s_indices = _transpose_csr(n_clients, n_servers, indptr, indices)
        return BipartiteGraph(
            n_clients=n_clients,
            n_servers=n_servers,
            client_indptr=indptr,
            client_indices=indices,
            server_indptr=s_indptr,
            server_indices=s_indices,
            name=name,
        )

    @staticmethod
    def from_neighbor_lists(
        neighbor_lists: Sequence[Sequence[int]],
        n_servers: int,
        *,
        name: str = "bipartite",
    ) -> "BipartiteGraph":
        """Build from per-client neighbor lists (validates and sorts)."""
        edges: list[tuple[int, int]] = []
        for v, nbrs in enumerate(neighbor_lists):
            for u in nbrs:
                edges.append((v, int(u)))
        return BipartiteGraph.from_edges(len(neighbor_lists), n_servers, edges, name=name)

    # -- invariants ------------------------------------------------------

    def validate(self) -> None:
        """Check all CSR invariants; raise :class:`GraphValidationError` on failure.

        Constructors already validate; this is for graphs loaded from
        disk or constructed field-by-field.
        """
        ci, cx = self.client_indptr, self.client_indices
        si, sx = self.server_indptr, self.server_indices
        if ci.shape != (self.n_clients + 1,) or si.shape != (self.n_servers + 1,):
            raise GraphValidationError("indptr length mismatch")
        if ci[0] != 0 or si[0] != 0:
            raise GraphValidationError("indptr must start at 0")
        if np.any(np.diff(ci) < 0) or np.any(np.diff(si) < 0):
            raise GraphValidationError("indptr must be non-decreasing")
        if ci[-1] != cx.size or si[-1] != sx.size:
            raise GraphValidationError("indptr tail must equal indices length")
        if cx.size != sx.size:
            raise GraphValidationError("edge count differs between directions")
        if cx.size and (cx.min() < 0 or cx.max() >= self.n_servers):
            raise GraphValidationError("client_indices out of range")
        if sx.size and (sx.min() < 0 or sx.max() >= self.n_clients):
            raise GraphValidationError("server_indices out of range")
        # Per-row sortedness and no duplicates (whole-array; graphs loaded
        # from the on-disk cache can have 10⁷+ edges).
        if not _rows_strictly_sorted(ci, cx):
            raise GraphValidationError("a client neighbor list is not strictly sorted")
        if not _rows_strictly_sorted(si, sx):
            raise GraphValidationError("a server neighbor list is not strictly sorted")
        # Cross-check that the two directions encode the same edge set:
        # compare the sorted (client, server) key multisets.
        fwd_rows = np.repeat(np.arange(self.n_clients, dtype=np.int64), np.diff(ci))
        fwd_keys = fwd_rows * np.int64(max(self.n_servers, 1)) + cx
        rev_cols = np.repeat(np.arange(self.n_servers, dtype=np.int64), np.diff(si))
        rev_keys = sx * np.int64(max(self.n_servers, 1)) + rev_cols
        if not np.array_equal(fwd_keys, np.sort(rev_keys)):
            raise GraphValidationError("forward/reverse adjacency disagree")

    # -- accessors -------------------------------------------------------

    @property
    def n_edges(self) -> int:
        """Number of edges |E|."""
        return int(self.client_indices.size)

    @property
    def client_degrees(self) -> np.ndarray:
        """Degree of every client, ``Δ_v`` for ``v ∈ C``."""
        return np.diff(self.client_indptr)

    @property
    def server_degrees(self) -> np.ndarray:
        """Degree of every server, ``Δ_u`` for ``u ∈ S``."""
        return np.diff(self.server_indptr)

    def neighbors_of_client(self, v: int) -> np.ndarray:
        """Sorted server neighborhood ``N(v)`` (a view, do not mutate)."""
        return self.client_indices[self.client_indptr[v] : self.client_indptr[v + 1]]

    def neighbors_of_server(self, u: int) -> np.ndarray:
        """Sorted client neighborhood ``N(u)`` (a view, do not mutate)."""
        return self.server_indices[self.server_indptr[u] : self.server_indptr[u + 1]]

    def degree_min_clients(self) -> int:
        """``Δ_min(C)`` as defined in §2.1 (0 for an empty client side)."""
        deg = self.client_degrees
        return int(deg.min()) if deg.size else 0

    def degree_max_servers(self) -> int:
        """``Δ_max(S)`` as defined in §2.1 (0 for an empty server side)."""
        deg = self.server_degrees
        return int(deg.max()) if deg.size else 0

    def has_isolated_clients(self) -> bool:
        """True if some client has no admissible server (protocol cannot finish)."""
        return bool(np.any(self.client_degrees == 0))

    # -- conversions -------------------------------------------------------

    def to_scipy(self) -> sp.csr_matrix:
        """Client×server 0/1 adjacency as ``scipy.sparse.csr_matrix``.

        Used by the metric layer for ``r_t(N(v)) = A @ r_t`` and
        ``S_t(v) = (A @ burned) / Δ_v`` matvecs.
        """
        data = np.ones(self.n_edges, dtype=np.float64)
        return sp.csr_matrix(
            (data, self.client_indices.astype(np.int64), self.client_indptr.astype(np.int64)),
            shape=(self.n_clients, self.n_servers),
        )

    def edges(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array of (client, server), row-sorted."""
        rows = np.repeat(np.arange(self.n_clients, dtype=np.int64), self.client_degrees)
        return np.column_stack([rows, self.client_indices])

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with nodes ``('c', v)`` / ``('s', u)``.

        Optional dependency: imported lazily so the core library does not
        require networkx.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("c", int(v)) for v in range(self.n_clients)), bipartite=0)
        g.add_nodes_from((("s", int(u)) for u in range(self.n_servers)), bipartite=1)
        g.add_edges_from((("c", int(v)), ("s", int(u))) for v, u in self.edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BipartiteGraph(name={self.name!r}, n_clients={self.n_clients}, "
            f"n_servers={self.n_servers}, n_edges={self.n_edges})"
        )
