"""Server-side SAER state shared by the live service and the offline simulator.

:class:`ServingState` owns everything that is *mutable* about a running
dynamic-SAER system: the cumulative received counts and burned mask of
the server side (with optional epoch recovery), the churn-able per-client
neighborhoods and their flat CSR view, the alive-ball table (owner,
birth round, optional caller tag), and the stream of protocol
randomness.  One round of the §4 dynamic protocol is split into three
verbs so both consumers can drive it:

``round_begin()``
    Burn recovery, then topology churn.
``admit_counts(...)`` / ``admit_balls(...)``
    Append newly arrived balls (dropping those at isolated clients —
    they can never be served, matching the simulator's ``dropped``
    accounting).
``route()``
    The SAER round proper — Phase-1 uniform destination gather, Phase-2
    count/decide against ``⌊c·d⌋``, survivor compaction — returning a
    :class:`RoundOutcome` with the per-ball assignments.

:func:`repro.dynamic.run_dynamic_saer` is a loop over these three verbs
and is **bit-identical** to the pre-refactor monolithic simulator
(``tests/data/dynamic_golden.json`` pins it); :mod:`repro.serve.service`
drives the same verbs from an asyncio micro-batching loop, so the
offline tables and the live service can never drift apart.

Like the batched engine, the round step is kernel-gated: the default
``numpy`` path is the vectorized reference, while the compiled gates
(``cext`` / ``numba`` / ``python`` via ``kernel=`` or ``REPRO_KERNELS``)
route the Phase-1 gather and Phase-2 count/decide through
:mod:`repro.batch.kernels`' fused round loop — the arriving-ball batch
amortizes exactly the way a trial batch does, and scratch lives in a
persistent :class:`~repro.batch.kernels.EngineBuffers` either way.
Both paths consume the identical uniform stream and produce identical
assignments (``tests/test_serve_state.py`` pins the parity).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np

from ..batch.kernels import EngineBuffers, block_clients_for, resolve_kernel
from ..core.config import ProtocolParams
from ..errors import CheckpointError, ProtocolConfigError, ServeError
from ..graphs.bipartite import BipartiteGraph
from ..rng import make_rng

__all__ = ["RoundOutcome", "ServingState"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: Checkpoint payload version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1


@dataclass
class RoundOutcome:
    """What one :meth:`ServingState.route` call did.

    ``latencies`` / ``assigned_servers`` / ``assigned_tags`` are aligned
    per assigned ball, in the canonical (ball-buffer) order; ``tags`` is
    ``None`` unless the state tracks caller tags.  ``received`` /
    ``accepted_counts`` are per-server ball counts for this round,
    populated only when the state tracks health (the service's
    quarantine loop consumes them).
    """

    round_no: int
    assigned: int
    backlog: int
    burned: int
    burned_fraction: float
    latencies: np.ndarray
    assigned_servers: np.ndarray
    assigned_tags: np.ndarray | None = None
    received: np.ndarray | None = None
    accepted_counts: np.ndarray | None = None


class ServingState:
    """Mutable dynamic-SAER state; see the module docstring for the verbs.

    ``track_tags=True`` (the live service) carries a caller-supplied
    int64 tag per ball through compaction so assignments can be mapped
    back to per-ball futures; the offline simulator leaves it off.
    ``buffers`` lets a host share one grow-only scratch pool across
    states; by default each state owns its own.

    ``faults`` accepts a :class:`~repro.faults.FaultSchedule` (or an
    already-materialized one): server kinds overlay the route step
    (crashed/stalled servers reject everything with frozen counters,
    Byzantine under-reporters never fill up and never appear burned),
    client kinds transform admissions (duplicate spray, misroute).  All
    fault randomness comes from the schedule's own seed — the protocol
    RNG stream is untouched, so an empty or ``fraction=0`` schedule is
    bit-identical to ``faults=None``.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        c: float,
        d: int,
        *,
        recovery: int | None = None,
        churn=None,
        seed=None,
        kernel: str | None = None,
        buffers: EngineBuffers | None = None,
        track_tags: bool = False,
        faults=None,
    ) -> None:
        if recovery is not None and recovery < 1:
            raise ProtocolConfigError("recovery must be >= 1 when given")
        self.params = ProtocolParams(c=c, d=d)
        self.capacity = self.params.capacity
        self.recovery = recovery
        self.churn = churn
        self.rng = make_rng(seed)
        self.n_clients = graph.n_clients
        self.n_servers = graph.n_servers
        self.neighbor_lists = [
            graph.neighbors_of_client(v).copy() for v in range(self.n_clients)
        ]
        self.track_tags = track_tags
        self.buffers = buffers if buffers is not None else EngineBuffers()
        self._kern = resolve_kernel(kernel)
        self._round_fn = self._kern.round_fn() if self._kern.compiled else None

        # Server state (SAER with optional epoch recovery).
        self.cum_received = np.zeros(self.n_servers, dtype=np.int64)
        self.burned = np.zeros(self.n_servers, dtype=bool)
        self.burn_clock = np.zeros(self.n_servers, dtype=np.int64)

        # Alive ball table: amortized-doubling buffers with an explicit
        # count, so arrivals append and acceptances compact in place.
        self._cap = 1024
        self._owners = np.empty(self._cap, dtype=np.int64)
        self._births = np.empty(self._cap, dtype=np.int64)
        self._tags = np.empty(self._cap, dtype=np.int64) if track_tags else None
        self.n_alive = 0

        self.round_no = 0
        self.dropped = 0
        self.assigned_total = 0

        # Fault injection (None = the untouched fast path everywhere).
        self.faults = self._materialize_faults(faults)
        self.byz_absorbed = 0
        # Quarantine: lazily activated so the no-quarantine path never
        # pays for it.  ``_full_lists`` holds the unfiltered (churn-able)
        # neighborhoods while any server is quarantined.
        self.quarantined: np.ndarray | None = None
        self._full_lists: list[np.ndarray] | None = None
        # Per-server received/accepted counts on each RoundOutcome —
        # enabled by the service when a health tracker is attached.
        self.track_health = False
        self._rebuild_flat()

    def _materialize_faults(self, faults):
        if faults is None:
            return None
        if hasattr(faults, "server_overlay"):  # already materialized
            return faults
        return faults.materialize(self.n_clients, self.n_servers)

    # -- topology ----------------------------------------------------------

    def _rebuild_flat(self) -> None:
        """Rebuild the flat CSR view of the (mutable) neighbor lists.

        Called only when churn changes them — keeps the per-round
        destination gather fully vectorized even with six-figure
        backlogs.
        """
        degs = np.array([nl.size for nl in self.neighbor_lists], dtype=np.int64)
        indptr = np.zeros(self.n_clients + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        indices = (
            np.concatenate(self.neighbor_lists)
            if indptr[-1]
            else np.empty(0, dtype=np.int64)
        )
        self.degs, self.indptr, self.indices = degs, indptr, indices
        self._csr32 = None  # int32 twin for the compiled kernel, built lazily

    def _csr_i32(self):
        if self._csr32 is None:
            self._csr32 = (
                self.indptr.astype(np.int32),
                self.degs.astype(np.int32),
                self.indices.astype(np.int32),
            )
        return self._csr32

    # -- verbs -------------------------------------------------------------

    def round_begin(self) -> int:
        """Heal recovered servers, then apply churn; returns rewired count."""
        if self.recovery is not None and self.burned.any():
            self.burn_clock[self.burned] += 1
            healed = self.burned & (self.burn_clock >= self.recovery)
            self.burned[healed] = False
            self.cum_received[healed] = 0
            self.burn_clock[healed] = 0
        rewired = 0
        if self.churn is not None:
            # With quarantine active, churn rewires the *full* lists (the
            # topology does not care who is quarantined — and the RNG
            # stream stays identical to the quarantine-free run), then
            # the routable view is refiltered.
            lists = self._full_lists if self._full_lists is not None else self.neighbor_lists
            rewired = self.churn.apply(self.rng, lists, self.n_servers)
            if rewired:
                if self._full_lists is not None:
                    self._refilter()
                else:
                    self._rebuild_flat()
        return rewired

    def _grow(self, need: int) -> None:
        if need <= self._cap:
            return
        while self._cap < need:
            self._cap *= 2
        for name in ("_owners", "_births", "_tags"):
            old = getattr(self, name)
            if old is None:
                continue
            new = np.empty(self._cap, dtype=np.int64)
            new[: self.n_alive] = old[: self.n_alive]
            setattr(self, name, new)

    def _append(self, owners: np.ndarray, tags: np.ndarray | None) -> None:
        k = owners.size
        self._grow(self.n_alive + k)
        sl = slice(self.n_alive, self.n_alive + k)
        self._owners[sl] = owners
        self._births[sl] = self.round_no
        if self._tags is not None:
            self._tags[sl] = tags if tags is not None else -1
        self.n_alive += k

    def admit_counts(self, new_counts: np.ndarray) -> int:
        """Admit per-client arrival counts (the simulator's path).

        Balls at isolated (zero-degree) clients are dropped — they can
        never be served — and counted in :attr:`dropped`.  Returns the
        number of balls admitted.
        """
        new_counts = np.asarray(new_counts)
        if self.faults is not None:
            new_counts = self.faults.transform_counts(self.round_no, new_counts)
        deg0 = self.degs == 0
        if deg0.any():
            self.dropped += int(new_counts[deg0].sum())
            new_counts = new_counts.copy()
            new_counts[deg0] = 0
        admitted = int(new_counts.sum())
        if admitted:
            owners = np.repeat(np.arange(self.n_clients, dtype=np.int64), new_counts)
            self._append(owners, None)
        return admitted

    def admit_balls(
        self, owners: np.ndarray, tags: np.ndarray | None = None
    ) -> tuple[int, np.ndarray]:
        """Admit individually tagged balls (the live service's path).

        Returns ``(admitted, dropped_tags)``: balls whose owner has a
        zero-degree neighborhood are rejected up front (their tags come
        back so the caller can resolve them as Dropped) and counted in
        :attr:`dropped`, matching the simulator's accounting.

        Under client-kind faults, Byzantine owners may be remapped
        (misroute) and adversarial duplicates appended with tag ``-1``
        (they resolve no caller future; ``admitted`` counts them).
        """
        owners = np.asarray(owners, dtype=np.int64)
        if owners.size and (owners.min() < 0 or owners.max() >= self.n_clients):
            raise ServeError("ball owner out of client range")
        if self.faults is not None and owners.size:
            owners, extra = self.faults.transform_owners(self.round_no, owners)
            if extra.size:
                owners = np.concatenate([owners, extra])
                if tags is not None:
                    tags = np.concatenate(
                        [tags, np.full(extra.size, -1, dtype=np.int64)]
                    )
        servable = self.degs[owners] > 0
        if not servable.all():
            n_drop = owners.size - int(np.count_nonzero(servable))
            self.dropped += n_drop
            dropped_tags = (
                tags[~servable] if tags is not None else np.full(n_drop, -1, np.int64)
            )
            owners = owners[servable]
            tags = tags[servable] if tags is not None else None
        else:
            dropped_tags = _EMPTY_I64
        if owners.size:
            self._append(owners, tags)
        return int(owners.size), dropped_tags

    def route(self) -> RoundOutcome:
        """Run one SAER round over the alive balls; see module docstring."""
        t = self.round_no
        self.round_no = t + 1
        n_s = self.n_servers
        if self.n_alive == 0:
            return RoundOutcome(
                round_no=t,
                assigned=0,
                backlog=0,
                burned=int(np.count_nonzero(self.burned)),
                burned_fraction=self.burned.mean() if n_s else 0.0,
                latencies=_EMPTY_I64,
                assigned_servers=_EMPTY_I64,
                assigned_tags=_EMPTY_I64 if self.track_tags else None,
            )
        n = self.n_alive
        owners = self._owners[:n]
        births = self._births[:n]
        # Phase 0: every alive ball draws one uniform, in buffer order —
        # the canonical stream both the numpy and compiled paths consume.
        u = self.buffers.get("serve.u", n, np.float64)
        self.rng.random(out=u)
        overlay = self._fault_pre(t)
        if self._round_fn is not None:
            ok, dest = self._route_kernel(u, owners)
        else:
            ok, dest = self._route_numpy(u, owners)
        if overlay is not None:
            self._fault_post(overlay)
        received = accepted_counts = None
        if self.track_health:
            received = np.bincount(dest, minlength=n_s).astype(np.int64)
            accepted_counts = np.bincount(dest[ok], minlength=n_s).astype(np.int64)
        assigned_servers = dest[ok]
        latencies = (t - births[ok]).astype(np.int64)
        assigned_tags = None
        if self._tags is not None:
            assigned_tags = self._tags[:n][ok].copy()
        asg = int(np.count_nonzero(ok))
        self.assigned_total += asg
        # Boolean compaction of the survivors, in place.
        keep = ~ok
        kept = int(np.count_nonzero(keep))
        self._owners[:kept] = owners[keep]
        self._births[:kept] = births[keep]
        if self._tags is not None:
            self._tags[:kept] = self._tags[:n][keep]
        self.n_alive = kept
        return RoundOutcome(
            round_no=t,
            assigned=asg,
            backlog=kept,
            burned=int(np.count_nonzero(self.burned)),
            burned_fraction=float(self.burned.mean()) if n_s else 0.0,
            latencies=latencies,
            assigned_servers=assigned_servers.astype(np.int64, copy=False),
            assigned_tags=assigned_tags,
            received=received,
            accepted_counts=accepted_counts,
        )

    # -- fault overlay ------------------------------------------------------

    def _fault_pre(self, t: int):
        """Overlay server faults onto ``cum_received`` before the route.

        Crashed/stalled servers are pinned above capacity (both route
        paths then reject every ball sent to them); Byzantine
        under-reporters are zeroed (they claim an empty counter every
        round).  Returns the undo record, or ``None`` when no server
        fault is active this round — in which case the route step is
        exactly the fault-free code path.
        """
        if self.faults is None:
            return None
        ov = self.faults.server_overlay(t)
        if ov is None:
            return None
        reject_idx, byz_idx = ov
        saved = self.cum_received[reject_idx].copy() if reject_idx.size else None
        if reject_idx.size:
            self.cum_received[reject_idx] = self.capacity + 1
        if byz_idx.size:
            self.cum_received[byz_idx] = 0
        return reject_idx, byz_idx, saved

    def _fault_post(self, overlay) -> None:
        """Undo the overlay and restore the SAER invariant.

        Crashed servers get their pre-round counters back (the balls
        never reached them); Byzantine servers bank what they really
        absorbed in :attr:`byz_absorbed` and reset to zero (the lie).
        ``burned`` is then recomputed from ``cum_received`` — the
        invariant ``burned ⇔ cum_received > capacity`` both route paths
        rely on, which the overlay's temporary writes would otherwise
        corrupt via the numpy path's incremental ``burned |= newly``.
        """
        reject_idx, byz_idx, saved = overlay
        if byz_idx.size:
            after = self.cum_received[byz_idx]
            absorbed = np.where(after <= self.capacity, after, 0)
            self.byz_absorbed += int(absorbed.sum())
            self.cum_received[byz_idx] = 0
        if reject_idx.size:
            self.cum_received[reject_idx] = saved
        np.greater(self.cum_received, self.capacity, out=self.burned)

    def _route_numpy(self, u: np.ndarray, owners: np.ndarray):
        """The vectorized reference round: gather → count → decide."""
        n_s = self.n_servers
        # Phase 1: every alive ball to a uniform current neighbor, via
        # the flat CSR view (vectorized gather).
        own_deg = self.degs[owners]
        offs = np.minimum((u * own_deg).astype(np.int64), own_deg - 1)
        dest = self.indices[self.indptr[owners] + offs]
        received = np.bincount(dest, minlength=n_s)
        # Phase 2: SAER rule.
        self.cum_received += received
        over = self.cum_received > self.capacity
        newly = over & ~self.burned
        accept = ~self.burned & ~over
        self.burned |= newly
        return accept[dest], dest

    def _route_kernel(self, u: np.ndarray, owners: np.ndarray):
        """The same round through the compiled fused kernel.

        The alive balls become one "trial" of the batched engine's round
        loop: a stable owner sort puts them in the kernel's canonical
        client-major key order, the fused gather+count+decide updates
        ``cum_received`` in place, and the accept mask falls out of the
        updated counts (``accept == cum_after ≤ ⌊c·d⌋`` — burned servers
        are exactly those already over threshold, so the three-way
        ``~burned & ~over`` rule collapses to one comparison).  Survivor
        compaction stays in :meth:`route` — identical to the numpy path.
        """
        n = owners.size
        n_s = self.n_servers
        buf = self.buffers
        order = np.argsort(owners, kind="stable")
        indptr32, degs32, indices32 = self._csr_i32()
        ball_key = buf.get("serve.key", n, np.int32)
        ball_key[:] = owners[order]
        u_sorted = buf.get("serve.us", n, np.float64)
        u_sorted[:] = u[order]
        dest32 = buf.get("serve.dest", n, np.int32)
        state1 = self.cum_received.reshape(1, n_s)
        state2 = buf.get("serve.loads", (1, n_s), np.int64)
        self._round_fn(
            u_sorted,
            ball_key,
            np.zeros(1, dtype=np.int64),           # trial_ids
            np.array([n], dtype=np.int64),         # sent
            0,                                     # reg_deg: general CSR path
            indptr32,
            degs32,
            indices32,
            self.n_clients,
            block_clients_for(self.n_clients, int(self.indptr[-1])),
            state1,
            state2,
            self.capacity,
            0,                                     # is_raes
            dest32,
            buf.get("serve.count", n_s, np.int64, zero=True),
            buf.get("serve.touched", n_s, np.int32),
            buf.get("serve.acc", n_s, np.uint8, zero=True),
            buf.get("serve.nacc", 1, np.int64),
            buf.get("serve.outkey", n, np.int32),
            0,                                     # do_compact: stays in route()
            buf.get("serve.cur", 1, np.int64),
            buf.get("serve.segs", 1, np.int64),
            buf.get("serve.sege", 1, np.int64),
        )
        # Decide + un-sort back to buffer order; the kernel already
        # folded the received counts into cum_received (state1 view).
        ok = np.empty(n, dtype=bool)
        ok[order] = self.cum_received[dest32[:n]] <= self.capacity
        dest = np.empty(n, dtype=np.int64)
        dest[order] = dest32[:n]
        np.greater(self.cum_received, self.capacity, out=self.burned)
        return ok, dest

    def evict_overdue(self, max_wait_rounds: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove balls that survived ``max_wait_rounds`` routes unassigned.

        Returns ``(owners, tags)`` of the evicted balls (tags are ``-1``
        without tag tracking).  The live service resolves these as
        ``Retry`` so a stalled system (every server burned, recovery
        off) sheds load instead of accumulating futures forever.
        """
        if max_wait_rounds < 1:
            raise ServeError("max_wait_rounds must be >= 1")
        n = self.n_alive
        if n == 0:
            return _EMPTY_I64, _EMPTY_I64
        age = self.round_no - self._births[:n]
        stale = age >= max_wait_rounds
        if not stale.any():
            return _EMPTY_I64, _EMPTY_I64
        owners = self._owners[:n][stale].copy()
        tags = (
            self._tags[:n][stale].copy()
            if self._tags is not None
            else np.full(owners.size, -1, np.int64)
        )
        keep = ~stale
        kept = int(np.count_nonzero(keep))
        self._owners[:kept] = self._owners[:n][keep]
        self._births[:kept] = self._births[:n][keep]
        if self._tags is not None:
            self._tags[:kept] = self._tags[:n][keep]
        self.n_alive = kept
        return owners, tags

    # -- quarantine --------------------------------------------------------

    def _refilter(self) -> None:
        """Rebuild the routable neighborhoods = full lists − quarantined.

        Stranding guard: a client whose *entire* (non-empty) full
        neighborhood is quarantined keeps its full list — every ball
        that was routable stays routable, at the price of still sending
        to suspect servers.  ``tests/test_serve_chaos.py`` pins this as
        a property over random quarantine sets.
        """
        q = self.quarantined
        new_lists = []
        for nl in self._full_lists:
            kept = nl[~q[nl]] if nl.size else nl
            new_lists.append(kept if kept.size or not nl.size else nl.copy())
        self.neighbor_lists = new_lists
        self._rebuild_flat()

    def set_quarantine(self, servers) -> int:
        """Remove ``servers`` from every routable neighborhood.

        Idempotent, additive, and guarded against stranding (see
        :meth:`_refilter`).  Returns the number of servers newly
        quarantined.  The first call activates quarantine bookkeeping;
        until then (and again after every server is readmitted) the
        state runs the original zero-overhead path.
        """
        servers = np.atleast_1d(np.asarray(servers, dtype=np.int64))
        if servers.size and (servers.min() < 0 or servers.max() >= self.n_servers):
            raise ServeError("quarantine server index out of range")
        if self.quarantined is None:
            self.quarantined = np.zeros(self.n_servers, dtype=bool)
            self._full_lists = self.neighbor_lists
        newly = int(np.count_nonzero(~self.quarantined[servers]))
        if newly == 0:
            return 0
        self.quarantined[servers] = True
        self._refilter()
        return newly

    def readmit(self, servers) -> int:
        """Return quarantined ``servers`` to the routable pool.

        Returns the number actually readmitted.  When the quarantine
        set empties, the state collapses back to the untouched
        fast path (full lists become the routable lists again).
        """
        if self.quarantined is None:
            return 0
        servers = np.atleast_1d(np.asarray(servers, dtype=np.int64))
        if servers.size and (servers.min() < 0 or servers.max() >= self.n_servers):
            raise ServeError("readmit server index out of range")
        freed = int(np.count_nonzero(self.quarantined[servers]))
        if freed == 0:
            return 0
        self.quarantined[servers] = False
        if self.quarantined.any():
            self._refilter()
        else:
            self.neighbor_lists = self._full_lists
            self.quarantined = None
            self._full_lists = None
            self._rebuild_flat()
        return freed

    @property
    def quarantined_count(self) -> int:
        return int(np.count_nonzero(self.quarantined)) if self.quarantined is not None else 0

    @property
    def quarantined_fraction(self) -> float:
        return self.quarantined_count / self.n_servers if self.n_servers else 0.0

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> dict:
        """A picklable snapshot from which :meth:`from_checkpoint`
        resumes with bit-identical accounting.

        Captures every piece of mutable state — protocol counters, the
        alive-ball table, the churn-able neighborhoods (full and
        filtered), quarantine, the protocol RNG's bit-generator state,
        and the fault schedule plus its runtime RNG — but *not*
        execution details (kernel gate, scratch buffers), which the
        restoring host chooses.
        """
        n = self.n_alive
        return {
            "version": CHECKPOINT_VERSION,
            "c": self.params.c,
            "d": self.params.d,
            "recovery": self.recovery,
            "churn": self.churn,
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "neighbor_lists": [nl.copy() for nl in self.neighbor_lists],
            "full_lists": (
                [nl.copy() for nl in self._full_lists]
                if self._full_lists is not None
                else None
            ),
            "quarantined": (
                self.quarantined.copy() if self.quarantined is not None else None
            ),
            "cum_received": self.cum_received.copy(),
            "burned": self.burned.copy(),
            "burn_clock": self.burn_clock.copy(),
            "owners": self._owners[:n].copy(),
            "births": self._births[:n].copy(),
            "tags": self._tags[:n].copy() if self._tags is not None else None,
            "round_no": self.round_no,
            "dropped": self.dropped,
            "assigned_total": self.assigned_total,
            "rng_state": self.rng.bit_generator.state,
            "track_tags": self.track_tags,
            "track_health": self.track_health,
            "fault_schedule": self.faults.schedule if self.faults is not None else None,
            "fault_state": self.faults.state() if self.faults is not None else None,
            "byz_absorbed": self.byz_absorbed,
        }

    @classmethod
    def from_checkpoint(
        cls,
        ckpt: dict,
        *,
        kernel: str | None = None,
        buffers: EngineBuffers | None = None,
    ) -> "ServingState":
        """Rebuild a state that resumes exactly where ``ckpt`` left off."""
        try:
            version = ckpt["version"]
        except (TypeError, KeyError):
            raise CheckpointError("not a ServingState checkpoint payload") from None
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {version} != supported {CHECKPOINT_VERSION}"
            )
        self = cls.__new__(cls)
        self.params = ProtocolParams(c=ckpt["c"], d=ckpt["d"])
        self.capacity = self.params.capacity
        self.recovery = ckpt["recovery"]
        self.churn = ckpt["churn"]
        self.n_clients = int(ckpt["n_clients"])
        self.n_servers = int(ckpt["n_servers"])
        self.neighbor_lists = [np.asarray(nl) for nl in ckpt["neighbor_lists"]]
        self._full_lists = (
            [np.asarray(nl) for nl in ckpt["full_lists"]]
            if ckpt["full_lists"] is not None
            else None
        )
        self.quarantined = (
            np.asarray(ckpt["quarantined"]) if ckpt["quarantined"] is not None else None
        )
        self.track_tags = bool(ckpt["track_tags"])
        self.track_health = bool(ckpt["track_health"])
        self.buffers = buffers if buffers is not None else EngineBuffers()
        self._kern = resolve_kernel(kernel)
        self._round_fn = self._kern.round_fn() if self._kern.compiled else None
        self.cum_received = np.array(ckpt["cum_received"], dtype=np.int64)
        self.burned = np.array(ckpt["burned"], dtype=bool)
        self.burn_clock = np.array(ckpt["burn_clock"], dtype=np.int64)
        owners = np.asarray(ckpt["owners"], dtype=np.int64)
        n = owners.size
        self._cap = max(1024, n)
        self._owners = np.empty(self._cap, dtype=np.int64)
        self._births = np.empty(self._cap, dtype=np.int64)
        self._owners[:n] = owners
        self._births[:n] = ckpt["births"]
        if self.track_tags:
            self._tags = np.empty(self._cap, dtype=np.int64)
            self._tags[:n] = ckpt["tags"]
        else:
            self._tags = None
        self.n_alive = n
        self.round_no = int(ckpt["round_no"])
        self.dropped = int(ckpt["dropped"])
        self.assigned_total = int(ckpt["assigned_total"])
        rng_state = ckpt["rng_state"]
        try:
            bitgen = getattr(np.random, rng_state["bit_generator"])()
            bitgen.state = rng_state
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise CheckpointError(f"cannot restore RNG state: {exc}") from None
        self.rng = np.random.Generator(bitgen)
        schedule = ckpt["fault_schedule"]
        if schedule is not None:
            self.faults = schedule.materialize(self.n_clients, self.n_servers)
            self.faults.set_state(ckpt["fault_state"])
        else:
            self.faults = None
        self.byz_absorbed = int(ckpt["byz_absorbed"])
        self._rebuild_flat()
        return self

    def save(self, path) -> None:
        """Pickle :meth:`checkpoint` to ``path``."""
        try:
            with open(path, "wb") as fh:
                pickle.dump(self.checkpoint(), fh)
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc

    @classmethod
    def load(
        cls,
        path,
        *,
        kernel: str | None = None,
        buffers: EngineBuffers | None = None,
    ) -> "ServingState":
        """Restore a state pickled by :meth:`save`."""
        try:
            with open(path, "rb") as fh:
                ckpt = pickle.load(fh)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        except pickle.UnpicklingError as exc:
            raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
        return cls.from_checkpoint(ckpt, kernel=kernel, buffers=buffers)

    # -- diagnostics -------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Alive (pending) balls after the last route."""
        return self.n_alive

    @property
    def burned_count(self) -> int:
        return int(np.count_nonzero(self.burned))

    @property
    def burned_fraction(self) -> float:
        return float(self.burned.mean()) if self.n_servers else 0.0

    @property
    def kernel_name(self) -> str:
        """Which round-kernel gate this state resolved to."""
        return self._kern.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingState(n_clients={self.n_clients}, n_servers={self.n_servers}, "
            f"round={self.round_no}, backlog={self.n_alive}, "
            f"burned={self.burned_count}, kernel={self._kern.name!r})"
        )
