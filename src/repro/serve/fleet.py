"""Multi-process sharded serving: a fleet of :class:`SaerService` workers.

:class:`FleetService` duck-types the single-process service — same
``submit`` / ``run_round`` / ``drain`` / ``stats`` surface — but the
server set is split across ``workers`` OS processes by a
:class:`~repro.serve.router.ShardMap`.  Each worker owns a
shard-restricted :class:`~repro.serve.state.ServingState` (shard-local
server ids, all clients global) and runs the full per-shard protocol —
burn clocks, epoch recovery, health quarantine, fault injection —
while the parent only routes balls and merges outcomes.

Round protocol (lock-step, one pipe per shard)::

    parent → worker : ("round", owners, tags, want_checkpoint)
    worker → parent : ("ok", packed_outcomes, info, checkpoint|None)
    parent → worker : ("metrics",)          → ("metrics", state_dict)
    parent → worker : ("stop",)             → ("stopped", state_dict)

``packed_outcomes`` is ``{"a": (tags, servers, latencies), "r":
{reason: tags}, "d": {reason: tags}}`` — parallel primitive lists, not
per-ball objects, so a round's reply pickles in one pass and the fleet
stays kernel-bound instead of pipe-bound on multi-core hosts.

Every live shard gets a ``round`` message every fleet round (an empty
one when no balls landed there) so burn/heal clocks advance in step.

Accounting invariants (pinned by ``tests/test_serve_fleet.py``):

* A ball is dropped at the router iff its client is isolated in the
  *full* graph — identical to single-process ``admit_balls``.
* Shard choice is sub-degree-proportional over live shards, and the
  worker draws uniformly inside the shard, so the composed destination
  law equals the single-process uniform-over-neighborhood draw.
* ``submitted == assigned + retried + dropped`` at the fleet level;
  on a fully drained fault-free trace the totals match the
  single-process run exactly.

Failure handling: a shard that dies mid-round (crash, or a
``FaultSchedule`` SIGKILL via ``process_faults``) has all its
outstanding balls resolved as ``Retry("unavailable")``; a shard-level
:class:`~repro.faults.HealthTracker` quarantines it, the router routes
around it (dead columns zeroed before the cumulative sub-degree), and
on readmission the shard is respawned from its last pipelined
checkpoint.  Fleet metrics merge per-shard registries bucket-wise via
:func:`~repro.serve.metrics.merge_registry_states`, plus router-side
``fleet_*`` series (disjoint names — no double counting).
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import signal
from dataclasses import dataclass, field

import numpy as np

from ..errors import ServeError
from ..faults.health import HealthPolicy, HealthTracker
from ..faults.spec import FaultSchedule
from ..graphs.bipartite import BipartiteGraph
from ..parallel.shared import SharedGraph
from .metrics import MetricsRegistry, merge_registry_states
from .protocol import (
    REASON_ISOLATED,
    REASON_SHUTDOWN,
    REASON_UNAVAILABLE,
    Assigned,
    Dropped,
    Retry,
)
from .router import ShardMap
from .router import choose_shards as _choose_shards
from .service import BallFuture, SaerService, ServeConfig
from .state import ServingState

__all__ = ["FleetConfig", "FleetService", "shard_worker_main"]

#: Shard-granularity health default: one missed reply is decisive (a
#: dead process never recovers on its own), short probation.
SHARD_HEALTH = HealthPolicy(
    fail_streak=1, quarantine_rounds=16, max_quarantine_fraction=0.5
)


@dataclass(frozen=True)
class FleetConfig:
    """Topology and queue-policy knobs of :class:`FleetService`.

    ``workers`` / ``strategy`` / ``vnodes`` / ``map_seed``
        The :class:`~repro.serve.router.ShardMap` parameters (both the
        router and every worker rebuild the same map from these).
    ``tick`` / ``max_batch`` / ``max_wait_rounds``
        Same meaning as :class:`~repro.serve.service.ServeConfig`;
        ``max_wait_rounds`` is enforced inside each worker.
    ``checkpoint_every``
        Every this many fleet rounds each worker pipelines a checkpoint
        back with its reply; the latest one seeds the respawn after a
        shard quarantine (0 disables — respawns start fresh).
    ``reply_timeout``
        Seconds the router waits for a shard's round reply before
        declaring the shard failed (a dead process fails fast via EOF;
        this bounds *stalls*).
    ``shard_health``
        :class:`HealthPolicy` applied at shard granularity (one
        "server" per worker process).
    ``server_health``
        Optional per-server policy forwarded into each worker's
        :class:`~repro.serve.service.ServeConfig`.
    ``start_method``
        multiprocessing start method; ``None`` picks ``fork`` when
        available (zero-copy spec inheritance) else the default.
    """

    workers: int = 2
    strategy: str = "hash"
    vnodes: int = 64
    map_seed: int = 0
    tick: float = 0.05
    max_batch: int = 4096
    max_wait_rounds: int | None = None
    checkpoint_every: int = 32
    reply_timeout: float = 60.0
    shard_health: HealthPolicy = field(default_factory=lambda: SHARD_HEALTH)
    server_health: HealthPolicy | None = None
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1; got {self.workers}")
        if self.tick <= 0:
            raise ServeError("tick must be > 0 seconds")
        if self.max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if self.max_wait_rounds is not None and self.max_wait_rounds < 1:
            raise ServeError("max_wait_rounds must be >= 1 when given")
        if self.checkpoint_every < 0:
            raise ServeError("checkpoint_every must be >= 0")
        if self.reply_timeout <= 0:
            raise ServeError("reply_timeout must be > 0 seconds")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _shard_faults(schedule, graph, smap, shard, sub):
    """Materialize ``schedule`` globally, then translate to shard-local ids.

    Member sets must be drawn over the *global* id space — every worker
    materializes the same schedule over the same sizes and keeps only
    its slice — or shard k's "5% crashed" would name different servers
    than the single-process run.  Server-kind members are filtered to
    the shard and re-indexed; client-kind members pass through (clients
    keep global ids in the subgraph).
    """
    if schedule is None:
        return None
    gmat = schedule.materialize(graph.n_clients, graph.n_servers)
    lmat = schedule.materialize(sub.n_clients, sub.n_servers)
    members = []
    for spec, m in zip(schedule.specs, gmat.members):
        if spec.is_server_kind:
            mine = m[smap.shard_of[m] == shard]
            members.append(smap.local_of[mine])
        else:
            members.append(m.copy())
    lmat.members = members
    return lmat


def shard_worker_main(conn, spec: dict) -> None:  # pragma: no cover - subprocess
    """Entry point of one shard worker (top-level for spawn picklability).

    Builds the shard-restricted service from ``spec``, then serves
    lock-step round messages on ``conn`` until ``stop`` or EOF.
    """
    graph_src = spec["graph"]
    graph = graph_src.graph if isinstance(graph_src, SharedGraph) else graph_src
    shard = spec["shard"]
    smap = ShardMap(
        graph.n_servers,
        spec["n_shards"],
        strategy=spec["strategy"],
        seed=spec["map_seed"],
        vnodes=spec["vnodes"],
    )
    sub, _members = smap.subgraph(graph, shard)
    faults = _shard_faults(spec["faults"], graph, smap, shard, sub)
    config = ServeConfig(
        max_batch=1 << 30,  # the router batches; never fire early
        max_wait_rounds=spec["max_wait_rounds"],
        health=spec["server_health"],
    )
    if spec["checkpoint"] is not None:
        service = SaerService.from_checkpoint(
            spec["checkpoint"], config, kernel=spec["kernel"]
        )
        # from_checkpoint re-materializes faults over *local* sizes,
        # drawing the wrong member sets; re-apply the translated ones.
        if service.state.faults is not None and faults is not None:
            service.state.faults.members = faults.members
    else:
        rng = np.random.Generator(np.random.Philox(spec["seed"]))
        state = ServingState(
            sub,
            spec["c"],
            spec["d"],
            recovery=spec["recovery"],
            seed=rng,
            kernel=spec["kernel"],
            track_tags=True,
            faults=faults,
        )
        service = SaerService(state, config)

    def new_box():
        return {"a": ([], [], []), "r": {}, "d": {}}

    box = new_box()

    def watch(fut, rtag):
        # `box` is read at resolution time (a ball may wait several
        # rounds), so the callback always lands in the current round's
        # reply, never the one it was submitted in.
        def cb(f):
            out = f.result()
            kind = out.outcome
            if kind == "assigned":
                a_tags, a_servers, a_lats = box["a"]
                a_tags.append(rtag)
                a_servers.append(out.server)
                a_lats.append(out.latency_rounds)
            elif kind == "retry":
                box["r"].setdefault(out.reason, []).append(rtag)
            else:
                box["d"].setdefault(out.reason, []).append(rtag)

        fut.add_done_callback(cb)

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if op == "round":
            owners, tags, want_ckpt = msg[1], msg[2], msg[3]
            if owners.size:
                # Group balls by owner so submit() is called once per
                # (client, burst) instead of once per ball.
                order = np.argsort(owners, kind="stable")
                so = owners[order]
                st = tags[order]
                cuts = np.flatnonzero(np.diff(so)) + 1
                starts = np.concatenate(([0], cuts))
                ends = np.concatenate((cuts, [so.size]))
                for s, e in zip(starts.tolist(), ends.tolist()):
                    futs = service.submit(int(so[s]), e - s)
                    for fut, rtag in zip(futs, st[s:e].tolist()):
                        watch(fut, int(rtag))
            service.run_round()
            state = service.state
            info = {
                "round": state.round_no,
                "backlog": state.backlog,
                "n_servers": state.n_servers,
                "burned": state.burned_count,
                "quarantined": state.quarantined_count,
                "assigned_total": state.assigned_total,
                "dropped": state.dropped,
                "byz_absorbed": state.byz_absorbed,
                "kernel": state.kernel_name,
            }
            ckpt = service.checkpoint() if want_ckpt else None
            sent, box = box, new_box()
            conn.send(("ok", sent, info, ckpt))
        elif op == "metrics":
            conn.send(("metrics", service.metrics.state_dict()))
        elif op == "stop":
            try:
                conn.send(("stopped", service.metrics.state_dict()))
            except (OSError, ValueError):
                pass
            break
    conn.close()


# ---------------------------------------------------------------------------
# Router / supervisor
# ---------------------------------------------------------------------------


def _default_start_method() -> str | None:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else None


class FleetService:
    """Supervisor + consistent-hash router over ``workers`` shard processes.

    Duck-types :class:`SaerService` (``submit`` / ``run_round`` /
    ``pending`` / ``in_flight`` / ``start`` / ``drain`` / ``shutdown``
    / ``stats``) so the TCP front end and the load generator drive
    either interchangeably.  Additionally offers :meth:`close` (also a
    context manager) — worker processes are real resources.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        c: float,
        d: int,
        *,
        config: FleetConfig | None = None,
        recovery: int | None = None,
        seed=None,
        kernel: str | None = None,
        faults: FaultSchedule | None = None,
        process_faults: FaultSchedule | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        cfg = self.config
        if process_faults is not None and not process_faults.server_kinds_only:
            raise ServeError(
                "process_faults must use server kinds (crash/stall) — each "
                "'server' is one shard process"
            )
        self.n_clients = graph.n_clients
        self.n_servers = graph.n_servers
        self.workers = cfg.workers
        self.shard_map = ShardMap(
            graph.n_servers,
            cfg.workers,
            strategy=cfg.strategy,
            seed=cfg.map_seed,
            vnodes=cfg.vnodes,
        )
        self._sub_deg = self.shard_map.sub_degrees(graph)
        self._deg = self._sub_deg.sum(axis=1)
        self._live = np.ones(cfg.workers, dtype=bool)
        self._recompute_cum()

        ss = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = ss.spawn(cfg.workers + 1)
        self._shard_seeds = children[: cfg.workers]
        self.rng = np.random.Generator(np.random.Philox(children[-1]))

        self._c = c
        self._d = d
        self._recovery = recovery
        self._kernel = kernel
        self._faults = faults
        self._pmat = (
            process_faults.materialize(0, cfg.workers)
            if process_faults is not None
            else None
        )

        self._tags = itertools.count()
        self._pending_owners: list[int] = []
        self._pending_tags: list[int] = []
        self._futures: dict[int, BallFuture] = {}
        self._outstanding: list[set[int]] = [set() for _ in range(cfg.workers)]
        self._health = HealthTracker(cfg.shard_health, cfg.workers)
        self._round = 0
        self._assigned = 0
        self._dropped = 0
        self._accepting = True
        self._closed = False
        self._kick = asyncio.Event()
        self._ticker: asyncio.Task | None = None
        self._ckpts: dict[int, dict] = {}
        self._info: list[dict | None] = [None] * cfg.workers

        self.metrics = registry or MetricsRegistry()
        m = self.metrics
        self._m_requests = m.counter("fleet_requests_total", "assign requests received")
        self._m_balls = m.counter("fleet_balls_total", "balls submitted")
        self._m_assigned = m.counter("fleet_assigned_total", "balls assigned across shards")
        self._m_retried = m.counter("fleet_retried_total", "balls resolved as retry")
        self._m_dropped = m.counter("fleet_dropped_total", "balls dropped (unservable)")
        self._m_rounds = m.counter("fleet_rounds_total", "fleet rounds executed")
        self._m_unroutable = m.counter(
            "fleet_unroutable_total", "balls whose every candidate shard was down"
        )
        self._m_shard_failures = m.counter(
            "fleet_shard_failures_total", "rounds a shard failed to reply"
        )
        self._m_kills = m.counter(
            "fleet_shard_kills_total", "shard processes killed by fault injection"
        )
        self._m_q_events = m.counter(
            "fleet_quarantine_events_total", "shards sent to quarantine"
        )
        self._m_readmitted = m.counter(
            "fleet_readmitted_total", "shards readmitted after quarantine"
        )
        self._m_respawns = m.counter(
            "fleet_respawns_total", "shard processes respawned"
        )
        self._m_pending = m.gauge("fleet_pending", "balls queued for the next round")
        self._m_live = m.gauge(
            "fleet_live_shards", "shards currently live", merge="max"
        )
        self._m_live.set(cfg.workers)

        self._ctx = multiprocessing.get_context(
            cfg.start_method or _default_start_method()
        )
        self._shared: SharedGraph | None = None
        payload: BipartiteGraph | SharedGraph = graph
        if cfg.workers > 1:
            self._shared = SharedGraph.share(graph)
            payload = self._shared
        self._payload_graph = payload
        self._procs: list = [None] * cfg.workers
        self._conns: list = [None] * cfg.workers
        try:
            for k in range(cfg.workers):
                self._spawn(k)
        except BaseException:
            self.close()
            raise

    # -- process management ------------------------------------------------

    def _spawn(self, k: int, checkpoint: dict | None = None) -> None:
        cfg = self.config
        spec = {
            "shard": k,
            "n_shards": self.workers,
            "graph": self._payload_graph,
            "strategy": cfg.strategy,
            "vnodes": cfg.vnodes,
            "map_seed": cfg.map_seed,
            "c": self._c,
            "d": self._d,
            "recovery": self._recovery,
            "kernel": self._kernel,
            "max_wait_rounds": cfg.max_wait_rounds,
            "server_health": cfg.server_health,
            "seed": self._shard_seeds[k],
            "faults": self._faults,
            "checkpoint": checkpoint,
        }
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(child, spec),
            daemon=True,
            name=f"repro-shard-{k}",
        )
        proc.start()
        child.close()
        self._procs[k] = proc
        self._conns[k] = parent

    def _recompute_cum(self) -> None:
        self._cum_live = np.cumsum(self._sub_deg * self._live[None, :], axis=1)

    def _recv(self, k: int):
        conn = self._conns[k]
        try:
            if not conn.poll(self.config.reply_timeout):
                return None
            return conn.recv()
        except (EOFError, OSError):
            return None

    def _fail_shard(self, k: int) -> None:
        """Resolve everything outstanding on a dead/stalled shard as
        ``Retry("unavailable")`` (late outcomes are ignored — the tag is
        gone from the futures table)."""
        stranded = self._outstanding[k]
        if stranded:
            arr = np.fromiter(stranded, dtype=np.int64)
            self._m_retried.inc(arr.size)
            self._resolve(arr, Retry(REASON_UNAVAILABLE))
            stranded.clear()
        proc = self._procs[k]
        if proc is not None and proc.is_alive():
            proc.terminate()

    def _quarantine(self, k: int) -> None:
        self._live[k] = False
        self._m_q_events.inc()
        self._fail_shard(k)
        proc = self._procs[k]
        if proc is not None:
            proc.join(timeout=1.0)
        conn = self._conns[k]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._conns[k] = None
        self._recompute_cum()

    def _readmit(self, k: int) -> None:
        self._spawn(k, checkpoint=self._ckpts.get(k))
        self._live[k] = True
        self._m_readmitted.inc()
        self._m_respawns.inc()
        self._recompute_cum()

    def _apply_process_faults(self, t: int) -> None:
        if self._pmat is None:
            return
        ov = self._pmat.server_overlay(t)
        if ov is None:
            return
        for k in ov[0].tolist():
            proc = self._procs[k]
            if proc is not None and proc.is_alive() and self._live[k]:
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                    self._m_kills.inc()
                except ProcessLookupError:  # pragma: no cover - lost race
                    pass

    # -- submission --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Balls queued for the next fleet round."""
        return len(self._pending_tags)

    @property
    def in_flight(self) -> int:
        """Balls with unresolved futures (queued + on shards)."""
        return len(self._futures)

    def submit(self, client: int, balls: int = 1) -> list[BallFuture]:
        """Queue ``balls`` at ``client``; one future per ball."""
        if balls < 1:
            raise ServeError(f"balls must be >= 1; got {balls}")
        if not (0 <= client < self.n_clients):
            raise ServeError(
                f"client must be in [0, {self.n_clients}); got {client}"
            )
        self._m_requests.inc()
        self._m_balls.inc(balls)
        futs = [BallFuture() for _ in range(balls)]
        if not self._accepting or self._closed:
            self._m_retried.inc(balls)
            for fut in futs:
                fut.set_result(Retry(REASON_SHUTDOWN))
            return futs
        for fut in futs:
            tag = next(self._tags)
            self._pending_owners.append(client)
            self._pending_tags.append(tag)
            self._futures[tag] = fut
        if len(self._pending_tags) >= self.config.max_batch:
            self._kick.set()
        return futs

    def _resolve(self, tags: np.ndarray, outcome) -> None:
        futures = self._futures
        for tag in tags.tolist():
            fut = futures.pop(int(tag), None)
            if fut is not None and not fut.done():
                fut.set_result(outcome)

    # -- the fleet round ---------------------------------------------------

    def run_round(self) -> int:
        """Route the queued batch, advance every live shard one round.

        Returns balls assigned this round (across all shards).
        """
        if self._closed:
            raise ServeError("FleetService is closed")
        t = self._round
        self._round += 1
        self._apply_process_faults(t)

        owners = np.array(self._pending_owners, dtype=np.int64)
        tags = np.array(self._pending_tags, dtype=np.int64)
        self._pending_owners.clear()
        self._pending_tags.clear()

        # Router-side drop: isolated in the FULL graph — same rule as
        # single-process admit_balls, independent of shard liveness.
        if owners.size:
            isolated = self._deg[owners] == 0
            if isolated.any():
                n_iso = int(isolated.sum())
                self._m_dropped.inc(n_iso)
                self._dropped += n_iso
                self._resolve(tags[isolated], Dropped(REASON_ISOLATED))
                owners = owners[~isolated]
                tags = tags[~isolated]

        shard = np.empty(0, dtype=np.int64)
        if owners.size:
            u = self.rng.random(owners.size)
            shard = _choose_shards(owners, u, self._cum_live)
            unroutable = shard >= self.workers
            if unroutable.any():
                n_u = int(unroutable.sum())
                self._m_retried.inc(n_u)
                self._m_unroutable.inc(n_u)
                self._resolve(tags[unroutable], Retry(REASON_UNAVAILABLE))
                keep = ~unroutable
                owners = owners[keep]
                tags = tags[keep]
                shard = shard[keep]

        every = self.config.checkpoint_every
        want_ckpt = bool(every) and (t + 1) % every == 0
        live_idx = np.flatnonzero(self._live).tolist()
        sent_ok = np.zeros(self.workers, dtype=bool)
        replied = np.zeros(self.workers, dtype=bool)
        for k in live_idx:
            mask = shard == k
            k_tags = tags[mask]
            try:
                self._conns[k].send(("round", owners[mask], k_tags, want_ckpt))
            except (OSError, ValueError, BrokenPipeError):
                # Balls meant for k are still in outstanding accounting
                # below via the k_tags update — add them first so the
                # failure path retries them.
                self._outstanding[k].update(k_tags.tolist())
                continue
            sent_ok[k] = True
            self._outstanding[k].update(k_tags.tolist())

        assigned = 0
        for k in live_idx:
            if not sent_ok[k]:
                continue
            reply = self._recv(k)
            if reply is None:
                continue
            _op, packed, info, ckpt = reply
            replied[k] = True
            self._info[k] = info
            if ckpt is not None:
                self._ckpts[k] = ckpt
            out_k = self._outstanding[k]
            futures = self._futures
            a_tags, a_servers, a_lats = packed["a"]
            for rtag, server, lat in zip(a_tags, a_servers, a_lats):
                out_k.discard(rtag)
                fut = futures.pop(rtag, None)
                if fut is not None and not fut.done():
                    fut.set_result(Assigned(server, lat))
            assigned += len(a_tags)
            for reason, rtags in packed["r"].items():
                outcome = Retry(reason)
                self._m_retried.inc(len(rtags))
                for rtag in rtags:
                    out_k.discard(rtag)
                    fut = futures.pop(rtag, None)
                    if fut is not None and not fut.done():
                        fut.set_result(outcome)
            for reason, rtags in packed["d"].items():
                outcome = Dropped(reason)
                self._m_dropped.inc(len(rtags))
                self._dropped += len(rtags)
                for rtag in rtags:
                    out_k.discard(rtag)
                    fut = futures.pop(rtag, None)
                    if fut is not None and not fut.done():
                        fut.set_result(outcome)

        self._assigned += assigned
        if assigned:
            self._m_assigned.inc(assigned)

        for k in live_idx:
            if not replied[k]:
                self._m_shard_failures.inc()
                self._fail_shard(k)

        # Shard-granularity health: every live shard we messaged is one
        # unit of evidence; a reply is an accept.
        received = np.zeros(self.workers, dtype=np.int64)
        received[np.flatnonzero(self._live)] = 1
        to_q, to_r = self._health.observe(received, replied.astype(np.int64))
        for k in to_q.tolist():
            self._quarantine(k)
        for k in to_r.tolist():
            self._readmit(k)

        self._m_rounds.inc()
        self._m_pending.set(self.pending)
        self._m_live.set(int(self._live.sum()))
        return assigned

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the tick loop (idempotent)."""
        if self._ticker is None or self._ticker.done():
            self._accepting = True
            self._ticker = asyncio.get_running_loop().create_task(self._tick_loop())

    async def _tick_loop(self) -> None:
        while self._accepting:
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=self.config.tick)
            except asyncio.TimeoutError:
                pass
            self._kick.clear()
            if not self._accepting:
                break
            self.run_round()

    async def drain(self, max_rounds: int = 10_000) -> int:
        """Run rounds back-to-back until no ball is in flight."""
        rounds = 0
        while self._futures and rounds < max_rounds:
            self.run_round()
            rounds += 1
            if rounds % 64 == 0:
                await asyncio.sleep(0)
        return rounds

    async def shutdown(self, final_rounds: int = 0) -> None:
        """Stop ticking, optionally run extra rounds, then close the fleet."""
        self._accepting = False
        self._kick.set()
        if self._ticker is not None:
            try:
                await self._ticker
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
            self._ticker = None
        for _ in range(final_rounds):
            if not self._futures:
                break
            self.run_round()
        self.close()

    def close(self) -> None:
        """Stop workers, resolve leftovers as ``Retry("shutdown")``, free
        the shared graph.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._accepting = False
        if self._futures:
            leftovers = np.fromiter(self._futures, dtype=np.int64)
            self._m_retried.inc(leftovers.size)
            self._resolve(leftovers, Retry(REASON_SHUTDOWN))
        self._pending_owners.clear()
        self._pending_tags.clear()
        for k in range(self.workers):
            conn = self._conns[k]
            proc = self._procs[k]
            if (
                conn is not None
                and proc is not None
                and self._live[k]
                and proc.is_alive()
            ):
                try:
                    conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=2.0)
                self._procs[k] = None
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                self._conns[k] = None
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- observability -----------------------------------------------------

    def fleet_metrics(self) -> MetricsRegistry:
        """Merged view: every live shard's registry + the router's own.

        Counters sum, gauges follow their declared merge semantics,
        histograms merge bucket-wise — see
        :func:`~repro.serve.metrics.merge_registry_states`.
        """
        states = []
        if not self._closed:
            for k in np.flatnonzero(self._live).tolist():
                conn = self._conns[k]
                try:
                    conn.send(("metrics",))
                    if conn.poll(self.config.reply_timeout):
                        msg = conn.recv()
                        if msg and msg[0] == "metrics":
                            states.append(msg[1])
                except (OSError, EOFError, ValueError, BrokenPipeError):
                    continue
        merged = merge_registry_states(states)
        merged.merge_state(self.metrics.state_dict())
        return merged

    def stats(self) -> dict:
        """One-shot fleet snapshot (same shape as ``SaerService.stats``
        plus ``workers`` / shard fields)."""
        infos = [i for i in self._info if i]
        backlog = sum(i["backlog"] for i in infos)
        burned = sum(i["burned"] for i in infos)
        quarantined = sum(i["quarantined"] for i in infos)
        shard_servers = sum(i["n_servers"] for i in infos)
        merged = self.fleet_metrics()
        return {
            "round": self._round,
            "backlog": backlog,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "burned_fraction": burned / shard_servers if shard_servers else 0.0,
            "quarantined": quarantined,
            "quarantined_shards": int(self.workers - self._live.sum()),
            "live_shards": int(self._live.sum()),
            "dropped_total": self._dropped,
            "assigned_total": self._assigned,
            "byz_absorbed": sum(i["byz_absorbed"] for i in infos),
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "workers": self.workers,
            "kernel": infos[0]["kernel"] if infos else None,
            "metrics": merged.snapshot(),
        }
