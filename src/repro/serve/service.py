"""The live-traffic service: micro-batched SAER rounds over asyncio.

:class:`SaerService` turns the shared :class:`~repro.serve.state.ServingState`
into a request/response system.  Callers :meth:`submit` assignment
requests (client id + ball count) at any time; each ball gets a
:class:`BallFuture` that completes with an
:class:`~repro.serve.protocol.Assigned` /
:class:`~repro.serve.protocol.Retry` /
:class:`~repro.serve.protocol.Dropped` outcome.  Arrivals accumulate in
a pending queue and are **micro-batched**: a round fires every
``tick`` seconds *or* as soon as the queue reaches ``max_batch`` balls,
whichever comes first — so a loaded service amortizes the vectorized
round step over thousands of concurrent requests exactly the way the
batched engine amortizes trials, while a quiet one still bounds latency
by the tick.

The round itself is ``round_begin → admit_balls → route → evict`` on
the shared state — the identical step the offline simulator runs — so
live behaviour (burn thresholds, recovery, churn, drop accounting) can
never drift from the E12 tables.  :func:`serve_tcp` bolts the
newline-delimited-JSON front end (:mod:`repro.serve.protocol`) onto a
service with ``asyncio.start_server``; in-process callers skip the wire
entirely.

Everything runs on one event loop; :meth:`run_round` is synchronous and
loop-free, so the load generator's *driven* mode can also call it
directly (no ticker, no sleeps) for maximum-throughput replay.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass

import numpy as np

from ..errors import CheckpointError, ServeError
from ..faults.health import HealthPolicy, HealthTracker
from .metrics import MetricsRegistry
from .protocol import (
    REASON_BACKPRESSURE,
    REASON_BROWNOUT,
    REASON_ISOLATED,
    REASON_SHUTDOWN,
    REASON_TIMEOUT,
    Assigned,
    Dropped,
    ProtocolError,
    Retry,
    decode_request,
    encode_outcome,
    encode_response,
)
from .state import ServingState

__all__ = ["BallFuture", "ServeConfig", "SaerService", "serve_tcp"]

#: Assignment-latency buckets, in rounds (small integers dominate).
ROUND_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256)
#: Per-round service-time buckets, in seconds.
TIME_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_PENDING = object()


class BallFuture:
    """A minimal, loop-free per-ball future.

    The service resolves tens of thousands of these per second, so they
    carry no event-loop machinery: just a result slot and done
    callbacks (invoked synchronously from :meth:`SaerService.run_round`,
    which runs on the service's event loop — the asyncio threading
    model is preserved).  ``await``-style consumption goes through
    :meth:`wait`, which lazily bridges onto an ``asyncio`` future only
    for callers that want it.
    """

    __slots__ = ("_result", "_callbacks")

    def __init__(self) -> None:
        self._result = _PENDING
        self._callbacks: list | None = None

    def done(self) -> bool:
        return self._result is not _PENDING

    def result(self):
        if self._result is _PENDING:
            raise asyncio.InvalidStateError("ball outcome is not available yet")
        return self._result

    def set_result(self, outcome) -> None:
        if self._result is not _PENDING:
            raise asyncio.InvalidStateError("outcome already set")
        self._result = outcome
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def add_done_callback(self, cb) -> None:
        if self._result is not _PENDING:
            cb(self)
            return
        if self._callbacks is None:
            self._callbacks = []
        self._callbacks.append(cb)

    async def wait(self):
        """Await the outcome from a coroutine on the service's loop."""
        if self._result is not _PENDING:
            return self._result
        loop = asyncio.get_running_loop()
        afut = loop.create_future()
        self.add_done_callback(
            lambda f: afut.done() or afut.set_result(f.result())
        )
        return await afut


@dataclass(frozen=True)
class ServeConfig:
    """Micro-batching and queue-policy knobs of :class:`SaerService`.

    ``tick``
        Seconds between rounds when the queue stays below ``max_batch``
        (the latency bound for a lightly loaded service).
    ``max_batch``
        Pending-ball count that fires a round immediately (the
        throughput knob; a full batch never waits for the tick).
    ``max_pending``
        Backpressure cap on queued + in-flight balls; submissions over
        it resolve as ``Retry("backpressure")`` instead of queueing.
        ``None`` disables the cap.
    ``max_wait_rounds``
        Balls unassigned after this many rounds resolve as
        ``Retry("timeout")`` — keeps a stalled system (every server
        burned, recovery off) from accumulating futures forever.
        ``None`` lets balls wait indefinitely, like the simulator.
    ``snapshot_every``
        Fire the metric registry's snapshot hooks every this many
        rounds (0 disables).
    ``health``
        A :class:`~repro.faults.HealthPolicy`: track per-server
        accept/reject evidence each round, quarantine servers that keep
        rejecting (crash, stall, or stuck burn), readmit them on
        probation.  ``None`` disables the self-healing loop.
    ``brownout_threshold`` / ``brownout_shed``
        Burned-fraction load shedding: while the unavailable fraction
        (burned ∪ quarantined) after a round exceeds the threshold, a
        ``brownout_shed`` fraction of newly submitted balls is resolved
        immediately as ``Retry("brownout")`` — a deterministic
        Bresenham-style accumulator, no RNG — so clients back off
        before the backlog melts down.  ``None`` disables brownout.
    """

    tick: float = 0.05
    max_batch: int = 4096
    max_pending: int | None = None
    max_wait_rounds: int | None = None
    snapshot_every: int = 0
    health: HealthPolicy | None = None
    brownout_threshold: float | None = None
    brownout_shed: float = 0.5

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ServeError("tick must be > 0 seconds")
        if self.max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if self.max_pending is not None and self.max_pending < 1:
            raise ServeError("max_pending must be >= 1 when given")
        if self.max_wait_rounds is not None and self.max_wait_rounds < 1:
            raise ServeError("max_wait_rounds must be >= 1 when given")
        if self.snapshot_every < 0:
            raise ServeError("snapshot_every must be >= 0")
        if self.brownout_threshold is not None and not (
            0.0 < self.brownout_threshold <= 1.0
        ):
            raise ServeError("brownout_threshold must be in (0, 1] when given")
        if not (0.0 < self.brownout_shed <= 1.0):
            raise ServeError("brownout_shed must be in (0, 1]")


class SaerService:
    """Micro-batched request/response layer over a :class:`ServingState`."""

    def __init__(
        self,
        state: ServingState,
        config: ServeConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not state.track_tags:
            raise ServeError(
                "SaerService needs a ServingState(track_tags=True) to map "
                "assignments back to per-ball futures"
            )
        self.state = state
        self.config = config or ServeConfig()
        self.metrics = registry or MetricsRegistry()
        self._tags = itertools.count()
        self._pending_owners: list[int] = []
        self._pending_tags: list[int] = []
        self._futures: dict[int, BallFuture] = {}
        self._kick = asyncio.Event()
        self._ticker: asyncio.Task | None = None
        self._accepting = True
        self._health: HealthTracker | None = None
        if self.config.health is not None:
            self._health = HealthTracker(self.config.health, state.n_servers)
            state.track_health = True
        self._brownout_active = False
        self._shed_acc = 0.0
        m = self.metrics
        self._m_requests = m.counter("serve_requests_total", "assign requests received")
        self._m_balls = m.counter("serve_balls_total", "balls submitted")
        self._m_assigned = m.counter("serve_assigned_total", "balls assigned to a server")
        self._m_dropped = m.counter("serve_dropped_total", "balls dropped (unservable)")
        self._m_retried = m.counter("serve_retried_total", "balls resolved as retry")
        self._m_rounds = m.counter("serve_rounds_total", "micro-batched rounds executed")
        self._m_rewired = m.counter("serve_rewired_clients_total", "client neighborhoods churned")
        self._m_backlog = m.gauge("serve_backlog", "in-flight balls after the last round")
        self._m_pending = m.gauge("serve_pending", "balls queued for the next round")
        self._m_burned = m.gauge("serve_burned_fraction", "burned servers / servers")
        self._m_round_s = m.histogram(
            "serve_round_seconds", "wall time per round", TIME_BUCKETS
        )
        self._m_lat = m.histogram(
            "serve_assign_latency_rounds", "rounds from arrival to assignment",
            ROUND_BUCKETS,
        )
        self._m_quarantined = m.gauge(
            "serve_quarantined", "servers currently quarantined"
        )
        self._m_q_events = m.counter(
            "serve_quarantine_events_total", "servers sent to quarantine"
        )
        self._m_readmitted = m.counter(
            "serve_readmitted_total", "servers readmitted from quarantine"
        )
        self._m_brownout = m.gauge(
            "serve_brownout", "1 while brownout shedding is active"
        )
        self._m_shed = m.counter(
            "serve_brownout_shed_total", "balls shed during brownout"
        )

    # -- submission --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Balls queued for the next round (not yet admitted)."""
        return len(self._pending_tags)

    @property
    def in_flight(self) -> int:
        """Balls with unresolved futures (queued + admitted backlog)."""
        return len(self._futures)

    def submit(self, client: int, balls: int = 1) -> list[BallFuture]:
        """Queue ``balls`` assignment requests for ``client``.

        Returns one :class:`BallFuture` per ball.  Over the
        ``max_pending`` cap (or after :meth:`shutdown`) futures come
        back already resolved as ``Retry`` — the caller always gets
        exactly ``balls`` futures.
        """
        if balls < 1:
            raise ServeError(f"balls must be >= 1; got {balls}")
        if not (0 <= client < self.state.n_clients):
            raise ServeError(
                f"client must be in [0, {self.state.n_clients}); got {client}"
            )
        self._m_requests.inc()
        self._m_balls.inc(balls)
        futs = [BallFuture() for _ in range(balls)]
        if not self._accepting:
            self._m_retried.inc(balls)
            for f in futs:
                f.set_result(Retry(REASON_SHUTDOWN))
            return futs
        shed_futs: list[BallFuture] = []
        if self._brownout_active:
            # Deterministic Bresenham-style shedding: no RNG, exact
            # long-run fraction, submission-order independent of load.
            self._shed_acc += balls * self.config.brownout_shed
            n_shed = int(self._shed_acc)
            self._shed_acc -= n_shed
            if n_shed:
                shed_futs, futs = futs[:n_shed], futs[n_shed:]
                self._m_retried.inc(n_shed)
                self._m_shed.inc(n_shed)
                for f in shed_futs:
                    f.set_result(Retry(REASON_BROWNOUT))
        cap = self.config.max_pending
        admit = len(futs)
        if cap is not None:
            room = cap - (self.pending + self.state.backlog)
            admit = max(0, min(len(futs), room))
        for f in futs[admit:]:
            self._m_retried.inc()
            f.set_result(Retry(REASON_BACKPRESSURE))
        for f in futs[:admit]:
            tag = next(self._tags)
            self._pending_owners.append(client)
            self._pending_tags.append(tag)
            self._futures[tag] = f
        self._m_pending.set(self.pending)
        if self.pending >= self.config.max_batch:
            self._kick.set()
        return shed_futs + futs

    # -- the micro-batched round -------------------------------------------

    def run_round(self) -> int:
        """Execute one round over the queued batch; returns balls assigned.

        Synchronous and loop-free by design: the ticker task calls it
        once per tick/kick, and the load generator's driven mode calls
        it back-to-back for full-speed replay.
        """
        t0 = time.perf_counter()
        state = self.state
        self._m_rewired.inc(state.round_begin())
        if self._pending_owners:
            owners = np.array(self._pending_owners, dtype=np.int64)
            tags = np.array(self._pending_tags, dtype=np.int64)
            self._pending_owners.clear()
            self._pending_tags.clear()
            _admitted, dropped_tags = state.admit_balls(owners, tags)
            if dropped_tags.size:
                self._m_dropped.inc(dropped_tags.size)
                self._resolve(dropped_tags, Dropped(REASON_ISOLATED))
        out = state.route()
        if out.assigned:
            self._m_assigned.inc(out.assigned)
            self._m_lat.observe_many(out.latencies)
            futures = self._futures
            for tag, server, lat in zip(
                out.assigned_tags.tolist(),
                out.assigned_servers.tolist(),
                out.latencies.tolist(),
            ):
                fut = futures.pop(tag, None)
                if fut is not None and not fut.done():
                    fut.set_result(Assigned(server, lat))
        if self.config.max_wait_rounds is not None:
            _owners, stale_tags = state.evict_overdue(self.config.max_wait_rounds)
            if stale_tags.size:
                self._m_retried.inc(stale_tags.size)
                self._resolve(stale_tags, Retry(REASON_TIMEOUT))
        if self._health is not None and out.received is not None:
            to_q, to_r = self._health.observe(out.received, out.accepted_counts)
            if to_q.size:
                self._m_q_events.inc(state.set_quarantine(to_q))
            if to_r.size:
                self._m_readmitted.inc(state.readmit(to_r))
            self._m_quarantined.set(state.quarantined_count)
        threshold = self.config.brownout_threshold
        if threshold is not None:
            # Unavailable = burned ∪ quarantined, measured once per
            # round (submit must stay O(1) per call).
            if state.quarantined is not None:
                unavailable = float(np.mean(state.burned | state.quarantined))
            else:
                unavailable = out.burned_fraction
            self._brownout_active = unavailable > threshold
            self._m_brownout.set(1.0 if self._brownout_active else 0.0)
        self._m_rounds.inc()
        self._m_backlog.set(out.backlog)
        self._m_pending.set(self.pending)
        self._m_burned.set(out.burned_fraction)
        self._m_round_s.observe(time.perf_counter() - t0)
        every = self.config.snapshot_every
        if every and int(self._m_rounds.value) % every == 0:
            self.metrics.fire_snapshot_hooks()
        return out.assigned

    def _resolve(self, tags: np.ndarray, outcome) -> None:
        futures = self._futures
        for tag in tags.tolist():
            fut = futures.pop(tag, None)
            if fut is not None and not fut.done():
                fut.set_result(outcome)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the tick loop (idempotent)."""
        if self._ticker is None or self._ticker.done():
            self._accepting = True
            self._ticker = asyncio.get_running_loop().create_task(self._tick_loop())

    async def _tick_loop(self) -> None:
        while self._accepting:
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=self.config.tick)
            except asyncio.TimeoutError:
                pass
            self._kick.clear()
            if not self._accepting:
                break
            self.run_round()

    async def drain(self, max_rounds: int = 10_000) -> int:
        """Run rounds back-to-back until no ball is in flight.

        Returns the rounds used.  Gives up after ``max_rounds`` (a
        stalled no-recovery system never empties) — remaining futures
        stay pending unless ``max_wait_rounds`` evicts them.
        """
        rounds = 0
        while self._futures and rounds < max_rounds:
            self.run_round()
            rounds += 1
            if rounds % 256 == 0:
                await asyncio.sleep(0)  # stay cooperative on long drains
        return rounds

    async def shutdown(self, final_rounds: int = 0) -> None:
        """Stop ticking; optionally run ``final_rounds`` more rounds, then
        resolve every unresolved ball as ``Retry("shutdown")``."""
        self._accepting = False
        self._kick.set()
        if self._ticker is not None:
            try:
                await self._ticker
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
            self._ticker = None
        for _ in range(final_rounds):
            if not self._futures:
                break
            self.run_round()
        if self._futures:
            leftovers = np.fromiter(self._futures, dtype=np.int64)
            self._m_retried.inc(leftovers.size)
            self._resolve(leftovers, Retry(REASON_SHUTDOWN))
        self._pending_owners.clear()
        self._pending_tags.clear()

    def stats(self) -> dict:
        """One-shot state + metrics snapshot (the ``stats`` wire op)."""
        s = self.state
        return {
            "round": s.round_no,
            "backlog": s.backlog,
            "pending": self.pending,
            "in_flight": self.in_flight,
            "burned_fraction": s.burned_fraction,
            "quarantined": s.quarantined_count,
            "brownout": self._brownout_active,
            "dropped_total": s.dropped,
            "assigned_total": s.assigned_total,
            "n_clients": s.n_clients,
            "n_servers": s.n_servers,
            "kernel": s.kernel_name,
            "metrics": self.metrics.snapshot(),
        }

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> dict:
        """Everything needed to resume serving with identical accounting.

        Extends :meth:`ServingState.checkpoint` with the service-side
        queue: the tag counter, the not-yet-admitted pending balls, and
        the tags of admitted in-flight balls.  Futures themselves are
        process-local and cannot travel; on restore, fresh (unheld)
        futures are created for the queued balls so ``drain`` semantics
        and the protocol accounting are unchanged, while the original
        callers are expected to retry over their own connections.
        """
        return {
            "state": self.state.checkpoint(),
            "next_tag": next(self._tags),  # count() has no peek; burn one
            "pending_owners": list(self._pending_owners),
            "pending_tags": list(self._pending_tags),
            "health": self._health.state() if self._health is not None else None,
            "shed_acc": self._shed_acc,
            "brownout_active": self._brownout_active,
        }

    @classmethod
    def from_checkpoint(
        cls,
        ckpt: dict,
        config: ServeConfig | None = None,
        registry: MetricsRegistry | None = None,
        *,
        kernel: str | None = None,
    ) -> "SaerService":
        """Rebuild a service resuming exactly where ``ckpt`` left off.

        ``config`` defaults to a fresh :class:`ServeConfig`; pass the
        original one to keep queue policies (and re-attach the same
        :class:`~repro.faults.HealthPolicy`).  Metrics start from zero —
        counters are observability, not protocol state.
        """
        try:
            state_ckpt = ckpt["state"]
        except (TypeError, KeyError):
            raise CheckpointError("not a SaerService checkpoint payload") from None
        state = ServingState.from_checkpoint(state_ckpt, kernel=kernel)
        service = cls(state, config, registry)
        service._tags = itertools.count(int(ckpt["next_tag"]))
        service._pending_owners = list(ckpt["pending_owners"])
        service._pending_tags = list(ckpt["pending_tags"])
        for tag in service._pending_tags:
            service._futures[tag] = BallFuture()
        # Admitted in-flight balls keep their tags inside the state's
        # ball table; give them fresh futures too so drain() sees them.
        if state.n_alive and state._tags is not None:
            for tag in state._tags[: state.n_alive].tolist():
                if tag >= 0:
                    service._futures[tag] = BallFuture()
        if service._health is not None and ckpt.get("health") is not None:
            service._health.set_state(ckpt["health"])
        service._shed_acc = float(ckpt.get("shed_acc", 0.0))
        service._brownout_active = bool(ckpt.get("brownout_active", False))
        return service


# ---------------------------------------------------------------------------
# TCP front end
# ---------------------------------------------------------------------------


async def serve_tcp(
    service: SaerService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Expose ``service`` over newline-delimited JSON on ``host:port``.

    Also starts the service's tick loop.  Returns the
    ``asyncio.AbstractServer`` (query ``.sockets[0].getsockname()`` for
    the bound port when ``port=0``).  Callers own both lifetimes: close
    the returned server *and* ``await service.shutdown()``.
    """
    await service.start()

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        alive = True

        def send(payload: dict) -> None:
            if not alive:
                return  # client went away mid-flight; outcome is discarded
            try:
                writer.write(encode_response(payload))
            except ConnectionError:  # pragma: no cover - race with close
                pass

        def on_ball(rid, ball_idx):
            def cb(fut):
                payload = {"id": rid, "ball": ball_idx}
                payload.update(encode_outcome(fut.result()))
                send(payload)

            return cb

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = decode_request(line)
                except ProtocolError as exc:
                    send({"id": None, "error": str(exc)})
                    continue
                op = msg["op"]
                if op == "assign":
                    req = msg["request"]
                    try:
                        futs = service.submit(req.client, req.balls)
                    except ValueError as exc:
                        send({"id": req.id, "error": str(exc)})
                        continue
                    for i, fut in enumerate(futs):
                        fut.add_done_callback(on_ball(req.id, i))
                elif op == "metrics":
                    # A fleet exposes the merged per-shard view; a plain
                    # service just renders its own registry.
                    fleet_view = getattr(service, "fleet_metrics", None)
                    reg = fleet_view() if fleet_view is not None else service.metrics
                    send({"id": msg["id"], "metrics": reg.render_text()})
                elif op == "stats":
                    send({"id": msg["id"], "stats": service.stats()})
                elif op == "ping":
                    send({"id": msg["id"], "pong": True})
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # disconnect mid-flight is a normal client lifecycle
        finally:
            alive = False
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    return await asyncio.start_server(handle, host, port)


def main(argv=None) -> int:  # pragma: no cover - exercised via CLI tests
    """``repro-lb serve`` entry: boot a TCP service and run until ^C."""
    import argparse

    from ..dynamic.churn import RewireChurn
    from ..graphs.families import build_point_graph

    parser = argparse.ArgumentParser(
        prog="repro-lb serve",
        description="Serve live SAER assignment traffic over NDJSON/TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument("--n", type=int, default=1024, help="clients = servers = n")
    parser.add_argument("--family", default="trust", help="graph family (families.py vocabulary)")
    parser.add_argument("--degree", type=int, default=None, help="client degree (default: canonical)")
    parser.add_argument("--c", type=float, default=2.0)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--recovery", type=int, default=8,
                        help="burn recovery rounds; 0 disables recovery")
    parser.add_argument("--churn", type=float, default=0.0, help="per-round rewire probability")
    parser.add_argument("--tick", type=float, default=0.05, help="seconds between rounds")
    parser.add_argument("--max-batch", type=int, default=4096)
    parser.add_argument("--max-pending", type=int, default=None)
    parser.add_argument("--max-wait-rounds", type=int, default=None)
    parser.add_argument("--kernel", default=None,
                        choices=("numpy", "cext", "numba", "python"))
    parser.add_argument("--seed", type=int, default=None, help="protocol RNG seed")
    parser.add_argument("--graph-seed", type=int, default=1, help="topology seed")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the servers across this many worker "
                             "processes (FleetService)")
    args = parser.parse_args(argv)

    point = {"family": args.family, "n": args.n}
    if args.degree:
        point["degree"] = args.degree
    graph = build_point_graph(point, args.graph_seed)
    if args.workers > 1:
        from .fleet import FleetConfig, FleetService

        if args.churn or args.max_pending:
            parser.error("--workers > 1 does not support churn / max-pending")
        service = FleetService(
            graph,
            args.c,
            args.d,
            config=FleetConfig(
                workers=args.workers,
                tick=args.tick,
                max_batch=args.max_batch,
                max_wait_rounds=args.max_wait_rounds,
            ),
            recovery=args.recovery or None,
            seed=args.seed,
            kernel=args.kernel,
        )
        kernel_banner = args.kernel or "auto"
    else:
        state = ServingState(
            graph,
            args.c,
            args.d,
            recovery=args.recovery or None,
            churn=RewireChurn(args.churn) if args.churn else None,
            seed=args.seed,
            kernel=args.kernel,
            track_tags=True,
        )
        config = ServeConfig(
            tick=args.tick,
            max_batch=args.max_batch,
            max_pending=args.max_pending,
            max_wait_rounds=args.max_wait_rounds,
        )
        service = SaerService(state, config)
        kernel_banner = state.kernel_name

    async def run():
        server = await serve_tcp(service, args.host, args.port)
        addr = server.sockets[0].getsockname()
        print(
            f"repro-serve listening on {addr[0]}:{addr[1]} — n={args.n} "
            f"family={args.family} c={args.c} d={args.d} kernel={kernel_banner} "
            f"workers={args.workers} tick={args.tick}s max_batch={args.max_batch}",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
