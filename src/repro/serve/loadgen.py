"""Open-loop load generator for the serving layer (``repro-lb loadgen``).

Replays an arrival trace against a :class:`~repro.serve.service.SaerService`
and reports what came back.  The trace is sampled up front from the
same :class:`~repro.dynamic.arrivals.ArrivalProcess` vocabulary the
offline simulator uses (``poisson`` / ``burst``) plus the adversarial
``hotspot`` trace (a few hot clients absorb most of the arrival mass),
from a dedicated trace RNG — so the *offered* load is identical across
modes, kernels, and processes, and only the protocol RNG differs.

Three modes:

``inprocess``
    Drives a service in the same process with **no ticker and no
    sleeps**: submit one round's arrivals, call the synchronous
    :meth:`~repro.serve.service.SaerService.run_round` directly, repeat,
    then drain.  This measures the serving stack's real per-round cost
    (submission + micro-batch + kernel + future resolution) at full
    speed — the throughput figure ``BENCH_serve.json`` records.  With
    ``--workers N`` the service is a multi-process
    :class:`~repro.serve.fleet.FleetService` sharding the servers
    across N workers; ``--check-conservation`` then gates on the
    fleet-level accounting identity.
``tcp``
    Open-loop NDJSON client against a running ``repro-lb serve``:
    writes each round's requests, sleeps one tick, never waits for
    responses (a reader task collects them concurrently).  Measures the
    wire path end to end.
``chaos``
    Boots its *own* TCP service in-process with a
    :class:`~repro.faults.FaultSchedule` (``--fault-kind`` /
    ``--fault-fraction`` / ``--fault-start``) plus the self-healing
    loop (``--health-streak`` quarantine, ``--brownout-threshold``
    shedding), then replays the trace over real TCP with client-side
    retries — faults land mid-replay, and the report shows whether
    backoff + quarantine recovered the assignment rate.

Client-side retries (:class:`RetryPolicy`, ``--retry``) resubmit balls
that come back ``Retry(timeout/backpressure/brownout)`` after a capped
exponential backoff with full jitter; the report then separates
first-attempt latency from end-to-end latency *including* retries, and
``--max-retry-rate`` / ``--max-p99-retries`` / ``--max-lost`` gate on
them.

The report lands in ``BENCH_serve.json`` (``--out``); ``--min-assign-rate``
and ``--max-p95`` turn it into a pass/fail gate for CI's serve-smoke job.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import time
from dataclasses import dataclass

import numpy as np

from ..dynamic.arrivals import (
    ArrivalProcess,
    BatchArrivals,
    HotspotArrivals,
    PoissonArrivals,
)
from ..dynamic.churn import RewireChurn
from ..errors import ServeError
from ..faults import FaultSchedule, FaultSpec, HealthPolicy
from ..graphs.families import build_point_graph
from ..rng import make_rng
from .fleet import FleetConfig, FleetService
from .protocol import decode_response, encode_response
from .service import SaerService, ServeConfig, serve_tcp
from .state import ServingState

__all__ = [
    "RetryPolicy",
    "make_arrivals",
    "sample_trace",
    "run_inprocess",
    "run_tcp",
    "run_chaos",
    "build_report",
    "check_report",
    "main",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry: capped exponential backoff with full jitter.

    A ball resolved as ``Retry`` is resubmitted after
    ``uniform(0, min(cap, base·2^attempt))`` rounds (at least 1), up to
    ``max_attempts`` total submissions; after that the ball counts as
    *lost*.  Jitter draws come from the policy's own seeded RNG so a
    replay is reproducible and never perturbs the trace or protocol
    streams.  In TCP modes a "round" of delay is one client tick.
    """

    max_attempts: int = 4
    base_delay: float = 1.0
    max_delay: float = 16.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServeError("max_attempts must be >= 1")
        if self.base_delay <= 0:
            raise ServeError("base_delay must be > 0 rounds")
        if self.max_delay < self.base_delay:
            raise ServeError("max_delay must be >= base_delay")

    def make_rng(self) -> np.random.Generator:
        return make_rng(self.seed)

    def delay_rounds(self, attempt: int, rng: np.random.Generator) -> int:
        """Backoff before submission ``attempt + 1`` (attempt is 0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        return max(1, math.ceil(float(rng.uniform(0.0, ceiling))))


def make_arrivals(
    kind: str,
    rate: float,
    *,
    batch_size: int = 64,
    period: int = 1,
    hot_fraction: float = 0.01,
    hot_weight: float = 0.9,
) -> ArrivalProcess:
    """The named trace family, with the loadgen's knobs applied."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "burst":
        return BatchArrivals(batch_size, period)
    if kind == "hotspot":
        return HotspotArrivals(rate, hot_fraction, hot_weight)
    raise ValueError(f"unknown trace kind {kind!r} (poisson/burst/hotspot)")


def sample_trace(
    arrivals: ArrivalProcess, n_clients: int, rounds: int, seed
) -> list[np.ndarray]:
    """Pre-sample per-round per-client arrival counts from a trace RNG.

    Separate from the service's protocol RNG on purpose: the offered
    load is then a fixed replayable artifact, and reruns vary only the
    protocol's coin flips.
    """
    rng = make_rng(seed)
    return [arrivals.sample(rng, n_clients, t) for t in range(rounds)]


# ---------------------------------------------------------------------------
# In-process driven mode
# ---------------------------------------------------------------------------


def run_inprocess(
    service: SaerService,
    trace: list[np.ndarray],
    drain_rounds: int = 2000,
    retry: RetryPolicy | None = None,
) -> dict:
    """Replay ``trace`` at full speed (one round per trace entry, no
    sleeps), drain, and tally every ball's outcome.

    With a :class:`RetryPolicy`, balls that come back ``Retry`` are
    resubmitted after a jittered backoff measured in *rounds* (the
    driven loop has no wall clock); ``tally["retry"]`` then counts only
    balls that exhausted every attempt (= ``lost``).
    """
    if retry is None:
        return _run_inprocess_plain(service, trace, drain_rounds)
    return _run_inprocess_retry(service, trace, drain_rounds, retry)


def _run_inprocess_plain(
    service: SaerService, trace: list[np.ndarray], drain_rounds: int
) -> dict:
    futures = []
    submit = service.submit
    t0 = time.perf_counter()
    for counts in trace:
        for client in np.nonzero(counts)[0].tolist():
            futures.extend(submit(client, int(counts[client])))
        service.run_round()
    extra = 0
    while service.in_flight and extra < drain_rounds:
        service.run_round()
        extra += 1
    wall = time.perf_counter() - t0

    tally = {"assigned": 0, "retry": 0, "dropped": 0, "unresolved": 0}
    latencies = []
    retry_reasons: dict[str, int] = {}
    for fut in futures:
        if not fut.done():
            tally["unresolved"] += 1
            continue
        out = fut.result()
        tally[out.outcome] += 1
        if out.outcome == "assigned":
            latencies.append(out.latency_rounds)
        elif out.outcome == "retry":
            retry_reasons[out.reason] = retry_reasons.get(out.reason, 0) + 1
    return {
        "wall_s": wall,
        "rounds": len(trace) + extra,
        "drain_rounds": extra,
        "submitted": len(futures),
        "tally": tally,
        "retry_reasons": retry_reasons,
        "resubmitted": 0,
        "lost": 0,
        "latencies": np.asarray(latencies, dtype=np.int64),
        "latencies_with_retries": np.asarray([], dtype=np.int64),
        "stats": service.stats(),
    }


def _run_inprocess_retry(
    service: SaerService,
    trace: list[np.ndarray],
    drain_rounds: int,
    retry: RetryPolicy,
) -> dict:
    rng = retry.make_rng()
    submit = service.submit
    tally = {"assigned": 0, "retry": 0, "dropped": 0, "unresolved": 0}
    retry_reasons: dict[str, int] = {}
    latencies: list[int] = []
    latencies_total: list[int] = []
    # due round -> [(client, next_attempt, birth_round), ...]
    backlog: dict[int, list[tuple[int, int, int]]] = {}
    cur = [0]  # current loadgen round, read by callbacks at resolution time
    counters = {"submitted": 0, "resubmitted": 0, "lost": 0}

    def watch(fut, client: int, attempt: int, birth: int) -> None:
        def cb(f):
            out = f.result()
            if out.outcome == "assigned":
                tally["assigned"] += 1
                latencies.append(out.latency_rounds)
                latencies_total.append(max(0, cur[0] - birth))
            elif out.outcome == "dropped":
                tally["dropped"] += 1
            else:  # retry
                retry_reasons[out.reason] = retry_reasons.get(out.reason, 0) + 1
                if attempt + 1 >= retry.max_attempts:
                    tally["retry"] += 1
                    counters["lost"] += 1
                else:
                    due = cur[0] + retry.delay_rounds(attempt, rng)
                    backlog.setdefault(due, []).append((client, attempt + 1, birth))

        fut.add_done_callback(cb)

    def resubmit_due() -> None:
        for client, attempt, birth in backlog.pop(cur[0], ()):
            counters["resubmitted"] += 1
            watch(submit(client, 1)[0], client, attempt, birth)

    t0 = time.perf_counter()
    for counts in trace:
        resubmit_due()
        for client in np.nonzero(counts)[0].tolist():
            k = int(counts[client])
            counters["submitted"] += k
            for f in submit(client, k):
                watch(f, client, 0, cur[0])
        service.run_round()
        cur[0] += 1
    extra = 0
    while (service.in_flight or backlog) and extra < drain_rounds:
        resubmit_due()
        service.run_round()
        cur[0] += 1
        extra += 1
    wall = time.perf_counter() - t0
    # Balls still queued for a future resubmission never got their last
    # chance — count them lost, not silently dropped from the tally.
    for entries in backlog.values():
        tally["retry"] += len(entries)
        counters["lost"] += len(entries)
    tally["unresolved"] = counters["submitted"] - (
        tally["assigned"] + tally["retry"] + tally["dropped"]
    )
    return {
        "wall_s": wall,
        "rounds": len(trace) + extra,
        "drain_rounds": extra,
        "submitted": counters["submitted"],
        "tally": tally,
        "retry_reasons": retry_reasons,
        "resubmitted": counters["resubmitted"],
        "lost": counters["lost"],
        "latencies": np.asarray(latencies, dtype=np.int64),
        "latencies_with_retries": np.asarray(latencies_total, dtype=np.int64),
        "stats": service.stats(),
    }


# ---------------------------------------------------------------------------
# TCP mode
# ---------------------------------------------------------------------------


async def run_tcp(
    host: str,
    port: int,
    trace: list[np.ndarray],
    tick: float,
    settle_s: float = 30.0,
    retry: RetryPolicy | None = None,
) -> dict:
    """Open-loop replay over the NDJSON wire; see module docstring.

    With a :class:`RetryPolicy`, a ball answered ``Retry`` is resubmitted
    (``balls=1``, a fresh request id) after its jittered backoff — one
    delay "round" is one client tick — and the replay is *done* when
    every logical ball reached a terminal outcome: assigned, dropped,
    or out of attempts.
    """
    reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    expected = int(sum(int(c.sum()) for c in trace))
    tally = {"assigned": 0, "retry": 0, "dropped": 0, "unresolved": 0}
    retry_reasons: dict[str, int] = {}
    latencies: list[int] = []
    latencies_total: list[int] = []
    errors = 0
    got = 0
    done = asyncio.Event()
    rng = retry.make_rng() if retry is not None else None
    meta: dict[int, tuple[int, int, float]] = {}  # rid -> (client, attempt, birth_t)
    counters = {"resubmitted": 0, "lost": 0}
    resend_tasks: set[asyncio.Task] = set()
    rid_box = [0]
    tick_s = max(tick, 1e-3)  # a zero tick still needs a finite backoff unit

    def encode_assign(client: int, balls: int, attempt: int, birth_t: float) -> bytes:
        rid_box[0] += 1
        rid = rid_box[0]
        if retry is not None:
            meta[rid] = (client, attempt, birth_t)
        return encode_response(
            {"op": "assign", "client": client, "balls": balls, "id": rid}
        )

    def finish_one() -> None:
        nonlocal got
        got += 1
        if got >= expected:
            done.set()

    async def resend_later(delay_s: float, client: int, attempt: int, birth_t: float):
        await asyncio.sleep(delay_s)
        counters["resubmitted"] += 1
        try:
            writer.write(encode_assign(client, 1, attempt, birth_t))
            await writer.drain()
        except ConnectionError:  # pragma: no cover - server died mid-resend
            counters["lost"] += 1
            tally["retry"] += 1
            finish_one()

    async def read_loop():
        nonlocal errors
        while got < expected:
            line = await reader.readline()
            if not line:
                break
            msg = decode_response(line)
            out = msg.get("outcome_obj")
            if out is None:
                if "error" in msg:
                    errors += 1
                    finish_one()
                continue
            ball_meta = meta.get(msg.get("id")) if retry is not None else None
            if out.outcome == "assigned":
                tally["assigned"] += 1
                latencies.append(out.latency_rounds)
                if ball_meta is not None:
                    latencies_total.append(
                        max(0, round((loop.time() - ball_meta[2]) / tick_s))
                    )
                finish_one()
            elif out.outcome == "dropped":
                tally["dropped"] += 1
                finish_one()
            else:  # retry outcome
                retry_reasons[out.reason] = retry_reasons.get(out.reason, 0) + 1
                if ball_meta is None:
                    tally["retry"] += 1
                    finish_one()
                    continue
                client, attempt, birth_t = ball_meta
                if attempt + 1 >= retry.max_attempts:
                    tally["retry"] += 1
                    counters["lost"] += 1
                    finish_one()
                else:
                    delay_s = retry.delay_rounds(attempt, rng) * tick_s
                    task = loop.create_task(
                        resend_later(delay_s, client, attempt + 1, birth_t)
                    )
                    resend_tasks.add(task)
                    task.add_done_callback(resend_tasks.discard)
        done.set()

    reader_task = loop.create_task(read_loop())
    t0 = time.perf_counter()
    for counts in trace:
        chunk = bytearray()
        birth_t = loop.time()
        for client in np.nonzero(counts)[0].tolist():
            chunk += encode_assign(client, int(counts[client]), 0, birth_t)
        if chunk:
            writer.write(bytes(chunk))
            await writer.drain()
        await asyncio.sleep(tick)
    try:
        await asyncio.wait_for(done.wait(), timeout=settle_s)
    except asyncio.TimeoutError:
        pass
    wall = time.perf_counter() - t0
    reader_task.cancel()
    for task in list(resend_tasks):
        task.cancel()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover - teardown race
        pass
    tally["unresolved"] = expected - sum(
        tally[k] for k in ("assigned", "retry", "dropped")
    ) - errors
    return {
        "wall_s": wall,
        "rounds": len(trace),
        "drain_rounds": 0,
        "submitted": expected,
        "tally": tally,
        "retry_reasons": retry_reasons,
        "errors": errors,
        "resubmitted": counters["resubmitted"],
        "lost": counters["lost"],
        "latencies": np.asarray(latencies, dtype=np.int64),
        "latencies_with_retries": np.asarray(latencies_total, dtype=np.int64),
        "stats": None,
    }


# ---------------------------------------------------------------------------
# Chaos mode
# ---------------------------------------------------------------------------


async def run_chaos(
    service: SaerService,
    trace: list[np.ndarray],
    tick: float,
    settle_s: float = 30.0,
    retry: RetryPolicy | None = None,
) -> dict:
    """Replay ``trace`` over real TCP against a service we boot ourselves.

    The service's :class:`~repro.faults.FaultSchedule` (attached to its
    :class:`ServingState`) fires mid-replay — crashes, stalls, Byzantine
    servers — while the client retries with backoff and the service's
    health loop quarantines the corpses.  Unlike ``tcp`` mode the
    service lives in-process, so the report keeps its ``stats`` block.
    """
    server = await serve_tcp(service, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        run = await run_tcp("127.0.0.1", port, trace, tick, settle_s, retry=retry)
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()
    run["stats"] = service.stats()
    return run


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def _lat_stats(lat: np.ndarray) -> dict:
    if lat.size == 0:
        return {"mean": math.nan, "p50": math.nan, "p95": math.nan, "p99": math.nan}
    return {
        "mean": round(float(lat.mean()), 3),
        "p50": float(np.quantile(lat, 0.50)),
        "p95": float(np.quantile(lat, 0.95)),
        "p99": float(np.quantile(lat, 0.99)),
    }


def build_report(mode: str, config: dict, trace_meta: dict, run: dict) -> dict:
    """Assemble the ``BENCH_serve.json`` payload from a run's raw tallies."""
    tally = run["tally"]
    submitted = run["submitted"]
    lat = _lat_stats(run["latencies"])
    wall = run["wall_s"]
    assigned = tally["assigned"]
    resubmitted = run.get("resubmitted", 0)
    return {
        "bench": "serve",
        "mode": mode,
        "config": config,
        "trace": trace_meta,
        "totals": {**tally, "submitted": submitted, "errors": run.get("errors", 0)},
        "retry_reasons": run["retry_reasons"],
        "assignment_rate": round(assigned / submitted, 4) if submitted else math.nan,
        "latency_rounds": lat,
        "retries": {
            "resubmitted": resubmitted,
            "lost": run.get("lost", 0),
            "retry_rate": round(resubmitted / submitted, 4) if submitted else 0.0,
            "latency_with_retries_rounds": _lat_stats(
                run.get("latencies_with_retries", np.asarray([], dtype=np.int64))
            ),
        },
        "throughput": {
            "wall_s": round(wall, 4),
            "rounds": run["rounds"],
            "drain_rounds": run["drain_rounds"],
            "assigned_per_s": round(assigned / wall, 1) if wall > 0 else math.nan,
            "balls_per_s": round(submitted / wall, 1) if wall > 0 else math.nan,
            "rounds_per_s": round(run["rounds"] / wall, 1) if wall > 0 else math.nan,
        },
        "conservation": {
            # Fleet-critical invariant: every submitted ball resolves to
            # exactly one of assigned/retry/dropped — a lost future
            # (e.g. a routing bug eating a ball) shows up as unresolved.
            "resolved": assigned + tally["retry"] + tally["dropped"],
            "unresolved": tally["unresolved"],
            "service_assigned_total": run["stats"].get("assigned_total"),
            "conserved": (
                tally["unresolved"] == 0
                and assigned + tally["retry"] + tally["dropped"] == submitted
            ),
        },
        "service": run["stats"],
    }


def check_report(
    report: dict,
    min_assign_rate: float | None,
    max_p95: float | None,
    min_throughput: float | None = None,
    *,
    max_retry_rate: float | None = None,
    max_p99_retries: float | None = None,
    max_lost: int | None = None,
    check_conservation: bool = False,
) -> list[str]:
    """The CI gate: list of violated bounds (empty = pass).

    The retry-aware gates read the ``retries`` block: ``max_retry_rate``
    bounds resubmissions per submitted ball, ``max_p99_retries`` bounds
    the p99 of end-to-end latency *including* backoff rounds, and
    ``max_lost`` bounds balls that ran out of attempts (``0`` asserts no
    ball was ever lost).  ``check_conservation`` asserts the accounting
    identity ``assigned + retry + dropped == submitted`` with zero
    unresolved futures — the invariant the sharded fleet must preserve.
    """
    failures = []
    if check_conservation:
        cons = report.get("conservation", {})
        if not cons.get("conserved", False):
            failures.append(
                "accounting not conserved: resolved "
                f"{cons.get('resolved')} of {report['totals'].get('submitted')} "
                f"submitted, {cons.get('unresolved')} unresolved"
            )
    if min_assign_rate is not None:
        rate = report["assignment_rate"]
        if not rate >= min_assign_rate:
            failures.append(
                f"assignment_rate {rate} < required {min_assign_rate}"
            )
    if max_p95 is not None:
        p95 = report["latency_rounds"]["p95"]
        if not p95 <= max_p95:
            failures.append(f"latency p95 {p95} rounds > allowed {max_p95}")
    if min_throughput is not None:
        tput = report["throughput"]["assigned_per_s"]
        if not tput >= min_throughput:
            failures.append(f"assigned_per_s {tput} < required {min_throughput}")
    retries = report.get("retries", {})
    if max_retry_rate is not None:
        rr = retries.get("retry_rate", 0.0)
        if not rr <= max_retry_rate:
            failures.append(f"retry_rate {rr} > allowed {max_retry_rate}")
    if max_p99_retries is not None:
        p99r = retries.get("latency_with_retries_rounds", {}).get("p99", math.nan)
        if not p99r <= max_p99_retries:
            failures.append(
                f"latency-with-retries p99 {p99r} rounds > allowed {max_p99_retries}"
            )
    if max_lost is not None:
        lost = retries.get("lost", 0)
        if not lost <= max_lost:
            failures.append(f"lost balls {lost} > allowed {max_lost}")
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    """``repro-lb loadgen`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-lb loadgen",
        description="Replay an arrival trace against the serving layer.",
    )
    parser.add_argument("--mode", choices=("inprocess", "tcp", "chaos"),
                        default="inprocess")
    # in-process service construction (ignored under --mode tcp)
    parser.add_argument("--n", type=int, default=10_000, help="clients = servers = n")
    parser.add_argument("--family", default="trust")
    parser.add_argument("--degree", type=int, default=None)
    parser.add_argument("--c", type=float, default=2.0)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--recovery", type=int, default=8,
                        help="burn recovery rounds; 0 disables recovery")
    parser.add_argument("--churn", type=float, default=0.0)
    parser.add_argument("--kernel", default=None,
                        choices=("numpy", "cext", "numba", "python"))
    parser.add_argument("--seed", type=int, default=None, help="protocol RNG seed")
    parser.add_argument("--graph-seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the servers across this many worker "
                             "processes (FleetService; inprocess mode only)")
    parser.add_argument("--max-batch", type=int, default=1 << 30,
                        help="service max_batch (driven mode never ticks)")
    parser.add_argument("--max-pending", type=int, default=None)
    parser.add_argument("--max-wait-rounds", type=int, default=None)
    parser.add_argument("--drain-rounds", type=int, default=2000,
                        help="extra rounds to flush the backlog after the trace")
    # trace
    parser.add_argument("--trace", choices=("poisson", "burst", "hotspot"),
                        default="poisson")
    parser.add_argument("--rate", type=float, default=0.5,
                        help="arrivals per client per round (poisson/hotspot)")
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=64, help="burst size")
    parser.add_argument("--period", type=int, default=1, help="burst period")
    parser.add_argument("--hot-fraction", type=float, default=0.01)
    parser.add_argument("--hot-weight", type=float, default=0.9)
    parser.add_argument("--trace-seed", type=int, default=7)
    # tcp / chaos
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument("--tick", type=float, default=0.01,
                        help="seconds between trace rounds (tcp/chaos mode)")
    parser.add_argument("--settle", type=float, default=30.0,
                        help="seconds to wait for in-flight responses (tcp/chaos)")
    # fault injection (inprocess/chaos; the served state owns the faults)
    parser.add_argument("--fault-kind", default=None,
                        choices=("crash", "stall", "byz_server",
                                 "byz_client_dup", "byz_client_misroute"),
                        help="inject this fault kind (chaos mode defaults to crash)")
    parser.add_argument("--fault-fraction", type=float, default=0.1,
                        help="fraction of servers/clients made faulty")
    parser.add_argument("--fault-start", type=int, default=10,
                        help="round the fault fires (mid-replay by default)")
    parser.add_argument("--fault-end", type=int, default=None,
                        help="round the fault heals (None = forever)")
    parser.add_argument("--fault-seed", type=int, default=1)
    # client-side retries
    parser.add_argument("--retry", type=int, default=None, metavar="ATTEMPTS",
                        help="enable retries with this many total attempts "
                             "(chaos mode defaults to 4)")
    parser.add_argument("--retry-base", type=float, default=1.0,
                        help="base backoff in rounds/ticks")
    parser.add_argument("--retry-cap", type=float, default=16.0,
                        help="backoff ceiling in rounds/ticks")
    parser.add_argument("--retry-seed", type=int, default=0)
    # self-healing service knobs (inprocess/chaos)
    parser.add_argument("--health-streak", type=int, default=None,
                        help="quarantine after this many all-reject rounds "
                             "(chaos mode defaults to 3; omit elsewhere to disable)")
    parser.add_argument("--quarantine-rounds", type=int, default=32,
                        help="rounds a quarantined server sits out")
    parser.add_argument("--brownout-threshold", type=float, default=None,
                        help="shed load while unavailable fraction exceeds this")
    parser.add_argument("--brownout-shed", type=float, default=0.5)
    # metric snapshot spool (inprocess/chaos)
    parser.add_argument("--snapshot-out", default=None,
                        help="NDJSON path for periodic metric snapshots")
    parser.add_argument("--snapshot-every", type=int, default=10,
                        help="rounds between snapshots (with --snapshot-out)")
    # report + gates
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="report path ('-' to skip writing)")
    parser.add_argument("--min-assign-rate", type=float, default=None)
    parser.add_argument("--max-p95", type=float, default=None)
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="required assigned_per_s (inprocess bench gate)")
    parser.add_argument("--max-retry-rate", type=float, default=None,
                        help="allowed resubmissions per submitted ball")
    parser.add_argument("--max-p99-retries", type=float, default=None,
                        help="allowed p99 latency including retries (rounds)")
    parser.add_argument("--max-lost", type=int, default=None,
                        help="allowed balls that exhausted all retry attempts")
    parser.add_argument("--check-conservation", action="store_true",
                        help="fail unless assigned+retry+dropped == submitted "
                             "with zero unresolved futures")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    arrivals = make_arrivals(
        args.trace,
        args.rate,
        batch_size=args.batch_size,
        period=args.period,
        hot_fraction=args.hot_fraction,
        hot_weight=args.hot_weight,
    )

    chaos = args.mode == "chaos"
    retry_attempts = args.retry if args.retry is not None else (4 if chaos else None)
    retry = None
    if retry_attempts is not None:
        retry = RetryPolicy(
            max_attempts=retry_attempts,
            base_delay=args.retry_base,
            max_delay=args.retry_cap,
            seed=args.retry_seed,
        )
    fault_kind = args.fault_kind or ("crash" if chaos else None)
    faults = None
    if fault_kind is not None:
        faults = FaultSchedule(
            (
                FaultSpec(
                    fault_kind,
                    args.fault_fraction,
                    start=args.fault_start,
                    end=args.fault_end,
                ),
            ),
            seed=args.fault_seed,
        )
    health_streak = args.health_streak if args.health_streak is not None else (
        3 if chaos else None
    )
    health = None
    if health_streak is not None:
        health = HealthPolicy(
            fail_streak=health_streak, quarantine_rounds=args.quarantine_rounds
        )

    if args.mode in ("inprocess", "chaos"):
        point = {"family": args.family, "n": args.n}
        if args.degree:
            point["degree"] = args.degree
        graph = build_point_graph(point, args.graph_seed)
        # A chaos run needs timeouts: balls sitting on a crashed server
        # must come back Retry("timeout") for backoff to have any work.
        max_wait = args.max_wait_rounds
        if chaos and max_wait is None:
            max_wait = 8
        fleet = None
        if args.workers > 1:
            if chaos:
                parser.error("--workers > 1 supports --mode inprocess only")
            if args.churn or args.max_pending or args.brownout_threshold \
                    or args.snapshot_out:
                parser.error(
                    "--workers > 1 does not support churn / max-pending / "
                    "brownout / snapshot-out"
                )
            service = fleet = FleetService(
                graph,
                args.c,
                args.d,
                config=FleetConfig(
                    workers=args.workers,
                    max_batch=args.max_batch,
                    max_wait_rounds=max_wait,
                    server_health=health,
                ),
                recovery=args.recovery or None,
                seed=args.seed,
                kernel=args.kernel,
                faults=faults,
            )
        else:
            state = ServingState(
                graph,
                args.c,
                args.d,
                recovery=args.recovery or None,
                churn=RewireChurn(args.churn) if args.churn else None,
                seed=args.seed,
                kernel=args.kernel,
                track_tags=True,
                faults=faults,
            )
            service = SaerService(
                state,
                ServeConfig(
                    tick=args.tick if chaos else 0.05,
                    max_batch=args.max_batch,
                    max_pending=args.max_pending,
                    max_wait_rounds=max_wait,
                    snapshot_every=args.snapshot_every if args.snapshot_out else 0,
                    health=health,
                    brownout_threshold=args.brownout_threshold,
                    brownout_shed=args.brownout_shed,
                ),
            )
            if args.snapshot_out:
                from .metrics import ndjson_snapshot_hook

                service.metrics.add_snapshot_hook(
                    ndjson_snapshot_hook(args.snapshot_out)
                )
        trace = sample_trace(arrivals, graph.n_clients, args.rounds, args.trace_seed)
        try:
            if chaos:
                run = asyncio.run(
                    run_chaos(service, trace, args.tick, args.settle, retry=retry)
                )
            else:
                run = run_inprocess(service, trace, args.drain_rounds, retry=retry)
        finally:
            if fleet is not None:
                fleet.close()
        config = {
            "n": args.n, "family": args.family, "degree": args.degree,
            "c": args.c, "d": args.d, "recovery": args.recovery or None,
            "churn": args.churn, "kernel": run["stats"].get("kernel"),
            "seed": args.seed, "workers": args.workers,
            "graph_seed": args.graph_seed, "max_wait_rounds": max_wait,
            "faults": {
                "kind": fault_kind, "fraction": args.fault_fraction,
                "start": args.fault_start, "end": args.fault_end,
                "seed": args.fault_seed,
            } if faults is not None else None,
            "health": {
                "fail_streak": health_streak,
                "quarantine_rounds": args.quarantine_rounds,
            } if health is not None else None,
            "brownout_threshold": args.brownout_threshold,
            "retry": {
                "max_attempts": retry_attempts, "base": args.retry_base,
                "cap": args.retry_cap, "seed": args.retry_seed,
            } if retry is not None else None,
        }
        n_clients = graph.n_clients
    else:
        # The server owns the topology; the trace just needs a client-id
        # range, which --n supplies (must not exceed the server's n).
        n_clients = args.n
        trace = sample_trace(arrivals, n_clients, args.rounds, args.trace_seed)
        run = asyncio.run(
            run_tcp(args.host, args.port, trace, args.tick, args.settle, retry=retry)
        )
        config = {
            "host": args.host, "port": args.port, "n": args.n,
            "tick": args.tick,
            "retry": {
                "max_attempts": retry_attempts, "base": args.retry_base,
                "cap": args.retry_cap, "seed": args.retry_seed,
            } if retry is not None else None,
        }

    trace_meta = {
        "kind": args.trace,
        "rounds": args.rounds,
        "seed": args.trace_seed,
        "balls": int(sum(int(c.sum()) for c in trace)),
        "offered_per_round": round(arrivals.expected_per_round(n_clients), 3),
    }
    report = build_report(args.mode, config, trace_meta, run)
    failures = check_report(
        report, args.min_assign_rate, args.max_p95, args.min_throughput,
        max_retry_rate=args.max_retry_rate,
        max_p99_retries=args.max_p99_retries,
        max_lost=args.max_lost,
        check_conservation=args.check_conservation,
    )
    report["gates"] = {
        "min_assign_rate": args.min_assign_rate,
        "max_p95": args.max_p95,
        "min_throughput": args.min_throughput,
        "max_retry_rate": args.max_retry_rate,
        "max_p99_retries": args.max_p99_retries,
        "max_lost": args.max_lost,
        "check_conservation": args.check_conservation,
        "passed": not failures,
        "failures": failures,
    }
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")
    if not args.quiet:
        t = report["throughput"]
        print(
            f"loadgen[{args.mode}] {trace_meta['balls']} balls / "
            f"{t['rounds']} rounds in {t['wall_s']}s — "
            f"assigned {report['totals']['assigned']} "
            f"({report['assignment_rate']:.1%}) at {t['assigned_per_s']}/s, "
            f"latency p50/p95 = {report['latency_rounds']['p50']}/"
            f"{report['latency_rounds']['p95']} rounds"
        )
        if args.out != "-":
            print(f"report written to {args.out}")
    for f in failures:
        print(f"GATE FAILED: {f}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
