"""Open-loop load generator for the serving layer (``repro-lb loadgen``).

Replays an arrival trace against a :class:`~repro.serve.service.SaerService`
and reports what came back.  The trace is sampled up front from the
same :class:`~repro.dynamic.arrivals.ArrivalProcess` vocabulary the
offline simulator uses (``poisson`` / ``burst``) plus the adversarial
``hotspot`` trace (a few hot clients absorb most of the arrival mass),
from a dedicated trace RNG — so the *offered* load is identical across
modes, kernels, and processes, and only the protocol RNG differs.

Two modes:

``inprocess``
    Drives a service in the same process with **no ticker and no
    sleeps**: submit one round's arrivals, call the synchronous
    :meth:`~repro.serve.service.SaerService.run_round` directly, repeat,
    then drain.  This measures the serving stack's real per-round cost
    (submission + micro-batch + kernel + future resolution) at full
    speed — the throughput figure ``BENCH_serve.json`` records.
``tcp``
    Open-loop NDJSON client against a running ``repro-lb serve``:
    writes each round's requests, sleeps one tick, never waits for
    responses (a reader task collects them concurrently).  Measures the
    wire path end to end.

The report lands in ``BENCH_serve.json`` (``--out``); ``--min-assign-rate``
and ``--max-p95`` turn it into a pass/fail gate for CI's serve-smoke job.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import time

import numpy as np

from ..dynamic.arrivals import (
    ArrivalProcess,
    BatchArrivals,
    HotspotArrivals,
    PoissonArrivals,
)
from ..dynamic.churn import RewireChurn
from ..graphs.families import build_point_graph
from ..rng import make_rng
from .protocol import decode_response, encode_response
from .service import SaerService, ServeConfig
from .state import ServingState

__all__ = [
    "make_arrivals",
    "sample_trace",
    "run_inprocess",
    "run_tcp",
    "build_report",
    "main",
]


def make_arrivals(
    kind: str,
    rate: float,
    *,
    batch_size: int = 64,
    period: int = 1,
    hot_fraction: float = 0.01,
    hot_weight: float = 0.9,
) -> ArrivalProcess:
    """The named trace family, with the loadgen's knobs applied."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "burst":
        return BatchArrivals(batch_size, period)
    if kind == "hotspot":
        return HotspotArrivals(rate, hot_fraction, hot_weight)
    raise ValueError(f"unknown trace kind {kind!r} (poisson/burst/hotspot)")


def sample_trace(
    arrivals: ArrivalProcess, n_clients: int, rounds: int, seed
) -> list[np.ndarray]:
    """Pre-sample per-round per-client arrival counts from a trace RNG.

    Separate from the service's protocol RNG on purpose: the offered
    load is then a fixed replayable artifact, and reruns vary only the
    protocol's coin flips.
    """
    rng = make_rng(seed)
    return [arrivals.sample(rng, n_clients, t) for t in range(rounds)]


# ---------------------------------------------------------------------------
# In-process driven mode
# ---------------------------------------------------------------------------


def run_inprocess(
    service: SaerService, trace: list[np.ndarray], drain_rounds: int = 2000
) -> dict:
    """Replay ``trace`` at full speed (one round per trace entry, no
    sleeps), drain, and tally every ball's outcome."""
    futures = []
    submit = service.submit
    t0 = time.perf_counter()
    for counts in trace:
        for client in np.nonzero(counts)[0].tolist():
            futures.extend(submit(client, int(counts[client])))
        service.run_round()
    extra = 0
    while service.in_flight and extra < drain_rounds:
        service.run_round()
        extra += 1
    wall = time.perf_counter() - t0

    tally = {"assigned": 0, "retry": 0, "dropped": 0, "unresolved": 0}
    latencies = []
    retry_reasons: dict[str, int] = {}
    for fut in futures:
        if not fut.done():
            tally["unresolved"] += 1
            continue
        out = fut.result()
        tally[out.outcome] += 1
        if out.outcome == "assigned":
            latencies.append(out.latency_rounds)
        elif out.outcome == "retry":
            retry_reasons[out.reason] = retry_reasons.get(out.reason, 0) + 1
    return {
        "wall_s": wall,
        "rounds": len(trace) + extra,
        "drain_rounds": extra,
        "submitted": len(futures),
        "tally": tally,
        "retry_reasons": retry_reasons,
        "latencies": np.asarray(latencies, dtype=np.int64),
        "stats": service.stats(),
    }


# ---------------------------------------------------------------------------
# TCP mode
# ---------------------------------------------------------------------------


async def run_tcp(
    host: str,
    port: int,
    trace: list[np.ndarray],
    tick: float,
    settle_s: float = 30.0,
) -> dict:
    """Open-loop replay over the NDJSON wire; see module docstring."""
    reader, writer = await asyncio.open_connection(host, port)
    expected = int(sum(int(c.sum()) for c in trace))
    tally = {"assigned": 0, "retry": 0, "dropped": 0, "unresolved": 0}
    retry_reasons: dict[str, int] = {}
    latencies: list[int] = []
    errors = 0
    got = 0
    done = asyncio.Event()

    async def read_loop():
        nonlocal got, errors
        while got < expected:
            line = await reader.readline()
            if not line:
                break
            msg = decode_response(line)
            out = msg.get("outcome_obj")
            if out is None:
                if "error" in msg:
                    errors += 1
                    got += 1
                continue
            got += 1
            tally[out.outcome] += 1
            if out.outcome == "assigned":
                latencies.append(out.latency_rounds)
            elif out.outcome == "retry":
                retry_reasons[out.reason] = retry_reasons.get(out.reason, 0) + 1
        done.set()

    reader_task = asyncio.get_running_loop().create_task(read_loop())
    t0 = time.perf_counter()
    rid = 0
    for counts in trace:
        chunk = bytearray()
        for client in np.nonzero(counts)[0].tolist():
            rid += 1
            chunk += encode_response(
                {"op": "assign", "client": client, "balls": int(counts[client]), "id": rid}
            )
        if chunk:
            writer.write(bytes(chunk))
            await writer.drain()
        await asyncio.sleep(tick)
    try:
        await asyncio.wait_for(done.wait(), timeout=settle_s)
    except asyncio.TimeoutError:
        pass
    wall = time.perf_counter() - t0
    reader_task.cancel()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover - teardown race
        pass
    tally["unresolved"] = expected - sum(
        tally[k] for k in ("assigned", "retry", "dropped")
    ) - errors
    return {
        "wall_s": wall,
        "rounds": len(trace),
        "drain_rounds": 0,
        "submitted": expected,
        "tally": tally,
        "retry_reasons": retry_reasons,
        "errors": errors,
        "latencies": np.asarray(latencies, dtype=np.int64),
        "stats": None,
    }


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def _lat_stats(lat: np.ndarray) -> dict:
    if lat.size == 0:
        return {"mean": math.nan, "p50": math.nan, "p95": math.nan, "p99": math.nan}
    return {
        "mean": round(float(lat.mean()), 3),
        "p50": float(np.quantile(lat, 0.50)),
        "p95": float(np.quantile(lat, 0.95)),
        "p99": float(np.quantile(lat, 0.99)),
    }


def build_report(mode: str, config: dict, trace_meta: dict, run: dict) -> dict:
    """Assemble the ``BENCH_serve.json`` payload from a run's raw tallies."""
    tally = run["tally"]
    submitted = run["submitted"]
    lat = _lat_stats(run["latencies"])
    wall = run["wall_s"]
    assigned = tally["assigned"]
    return {
        "bench": "serve",
        "mode": mode,
        "config": config,
        "trace": trace_meta,
        "totals": {**tally, "submitted": submitted, "errors": run.get("errors", 0)},
        "retry_reasons": run["retry_reasons"],
        "assignment_rate": round(assigned / submitted, 4) if submitted else math.nan,
        "latency_rounds": lat,
        "throughput": {
            "wall_s": round(wall, 4),
            "rounds": run["rounds"],
            "drain_rounds": run["drain_rounds"],
            "assigned_per_s": round(assigned / wall, 1) if wall > 0 else math.nan,
            "balls_per_s": round(submitted / wall, 1) if wall > 0 else math.nan,
            "rounds_per_s": round(run["rounds"] / wall, 1) if wall > 0 else math.nan,
        },
        "service": run["stats"],
    }


def check_report(
    report: dict,
    min_assign_rate: float | None,
    max_p95: float | None,
    min_throughput: float | None = None,
) -> list[str]:
    """The CI gate: list of violated bounds (empty = pass)."""
    failures = []
    if min_assign_rate is not None:
        rate = report["assignment_rate"]
        if not rate >= min_assign_rate:
            failures.append(
                f"assignment_rate {rate} < required {min_assign_rate}"
            )
    if max_p95 is not None:
        p95 = report["latency_rounds"]["p95"]
        if not p95 <= max_p95:
            failures.append(f"latency p95 {p95} rounds > allowed {max_p95}")
    if min_throughput is not None:
        tput = report["throughput"]["assigned_per_s"]
        if not tput >= min_throughput:
            failures.append(f"assigned_per_s {tput} < required {min_throughput}")
    return failures


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    """``repro-lb loadgen`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-lb loadgen",
        description="Replay an arrival trace against the serving layer.",
    )
    parser.add_argument("--mode", choices=("inprocess", "tcp"), default="inprocess")
    # in-process service construction (ignored under --mode tcp)
    parser.add_argument("--n", type=int, default=10_000, help="clients = servers = n")
    parser.add_argument("--family", default="trust")
    parser.add_argument("--degree", type=int, default=None)
    parser.add_argument("--c", type=float, default=2.0)
    parser.add_argument("--d", type=int, default=4)
    parser.add_argument("--recovery", type=int, default=8,
                        help="burn recovery rounds; 0 disables recovery")
    parser.add_argument("--churn", type=float, default=0.0)
    parser.add_argument("--kernel", default=None,
                        choices=("numpy", "cext", "numba", "python"))
    parser.add_argument("--seed", type=int, default=None, help="protocol RNG seed")
    parser.add_argument("--graph-seed", type=int, default=1)
    parser.add_argument("--max-batch", type=int, default=1 << 30,
                        help="service max_batch (driven mode never ticks)")
    parser.add_argument("--max-pending", type=int, default=None)
    parser.add_argument("--max-wait-rounds", type=int, default=None)
    parser.add_argument("--drain-rounds", type=int, default=2000,
                        help="extra rounds to flush the backlog after the trace")
    # trace
    parser.add_argument("--trace", choices=("poisson", "burst", "hotspot"),
                        default="poisson")
    parser.add_argument("--rate", type=float, default=0.5,
                        help="arrivals per client per round (poisson/hotspot)")
    parser.add_argument("--rounds", type=int, default=200)
    parser.add_argument("--batch-size", type=int, default=64, help="burst size")
    parser.add_argument("--period", type=int, default=1, help="burst period")
    parser.add_argument("--hot-fraction", type=float, default=0.01)
    parser.add_argument("--hot-weight", type=float, default=0.9)
    parser.add_argument("--trace-seed", type=int, default=7)
    # tcp
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument("--tick", type=float, default=0.01,
                        help="seconds between trace rounds (tcp mode)")
    parser.add_argument("--settle", type=float, default=30.0,
                        help="seconds to wait for in-flight responses (tcp mode)")
    # report + gates
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="report path ('-' to skip writing)")
    parser.add_argument("--min-assign-rate", type=float, default=None)
    parser.add_argument("--max-p95", type=float, default=None)
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="required assigned_per_s (inprocess bench gate)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    arrivals = make_arrivals(
        args.trace,
        args.rate,
        batch_size=args.batch_size,
        period=args.period,
        hot_fraction=args.hot_fraction,
        hot_weight=args.hot_weight,
    )

    if args.mode == "inprocess":
        point = {"family": args.family, "n": args.n}
        if args.degree:
            point["degree"] = args.degree
        graph = build_point_graph(point, args.graph_seed)
        state = ServingState(
            graph,
            args.c,
            args.d,
            recovery=args.recovery or None,
            churn=RewireChurn(args.churn) if args.churn else None,
            seed=args.seed,
            kernel=args.kernel,
            track_tags=True,
        )
        service = SaerService(
            state,
            ServeConfig(
                max_batch=args.max_batch,
                max_pending=args.max_pending,
                max_wait_rounds=args.max_wait_rounds,
            ),
        )
        trace = sample_trace(arrivals, graph.n_clients, args.rounds, args.trace_seed)
        run = run_inprocess(service, trace, args.drain_rounds)
        config = {
            "n": args.n, "family": args.family, "degree": args.degree,
            "c": args.c, "d": args.d, "recovery": args.recovery or None,
            "churn": args.churn, "kernel": state.kernel_name, "seed": args.seed,
            "graph_seed": args.graph_seed, "max_wait_rounds": args.max_wait_rounds,
        }
        n_clients = graph.n_clients
    else:
        # The server owns the topology; the trace just needs a client-id
        # range, which --n supplies (must not exceed the server's n).
        n_clients = args.n
        trace = sample_trace(arrivals, n_clients, args.rounds, args.trace_seed)
        run = asyncio.run(
            run_tcp(args.host, args.port, trace, args.tick, args.settle)
        )
        config = {
            "host": args.host, "port": args.port, "n": args.n,
            "tick": args.tick,
        }

    trace_meta = {
        "kind": args.trace,
        "rounds": args.rounds,
        "seed": args.trace_seed,
        "balls": int(sum(int(c.sum()) for c in trace)),
        "offered_per_round": round(arrivals.expected_per_round(n_clients), 3),
    }
    report = build_report(args.mode, config, trace_meta, run)
    failures = check_report(
        report, args.min_assign_rate, args.max_p95, args.min_throughput
    )
    report["gates"] = {
        "min_assign_rate": args.min_assign_rate,
        "max_p95": args.max_p95,
        "min_throughput": args.min_throughput,
        "passed": not failures,
        "failures": failures,
    }
    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")
    if not args.quiet:
        t = report["throughput"]
        print(
            f"loadgen[{args.mode}] {trace_meta['balls']} balls / "
            f"{t['rounds']} rounds in {t['wall_s']}s — "
            f"assigned {report['totals']['assigned']} "
            f"({report['assignment_rate']:.1%}) at {t['assigned_per_s']}/s, "
            f"latency p50/p95 = {report['latency_rounds']['p50']}/"
            f"{report['latency_rounds']['p95']} rounds"
        )
        if args.out != "-":
            print(f"report written to {args.out}")
    for f in failures:
        print(f"GATE FAILED: {f}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
