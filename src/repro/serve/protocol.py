"""Wire protocol of the serving layer: request/outcome types + NDJSON codec.

The front end is newline-delimited JSON over TCP (stdlib only — no new
dependencies): each line is one JSON object, requests flow client →
server, responses flow back with the request's ``id`` echoed so an
open-loop client can pipeline without waiting.  One ``assign`` request
may carry several balls; each ball gets its *own* response line (the
service completes per-ball futures, and the wire mirrors that).

Requests::

    {"op": "assign", "client": 17, "balls": 2, "id": "r1"}
    {"op": "metrics", "id": "m1"}        # text exposition
    {"op": "stats", "id": "s1"}          # metrics snapshot + server state
    {"op": "ping", "id": "p1"}

Responses::

    {"id": "r1", "ball": 0, "outcome": "assigned", "server": 431, "latency_rounds": 1}
    {"id": "r1", "ball": 1, "outcome": "retry", "reason": "timeout"}
    {"id": "r1", "ball": 2, "outcome": "dropped", "reason": "isolated-client"}
    {"id": "m1", "metrics": "# HELP ...\\n..."}
    {"id": "p1", "pong": true}
    {"id": "x9", "error": "unknown op 'frobnicate'"}

In-process callers never see JSON: they get the same
:class:`Assigned` / :class:`Retry` / :class:`Dropped` outcome objects
from the per-ball futures directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = [
    "PROTOCOL_VERSION",
    "AssignRequest",
    "Assigned",
    "Retry",
    "Dropped",
    "ProtocolError",
    "decode_request",
    "encode_response",
    "encode_outcome",
    "decode_response",
]

PROTOCOL_VERSION = 1

#: Outcome reasons used by the service.
REASON_ISOLATED = "isolated-client"
REASON_TIMEOUT = "timeout"
REASON_BACKPRESSURE = "backpressure"
REASON_SHUTDOWN = "shutdown"
REASON_BROWNOUT = "brownout"
#: Every shard holding the ball's candidate servers is down/quarantined
#: (fleet mode); the caller should retry after backoff.
REASON_UNAVAILABLE = "unavailable"


class ProtocolError(ValueError):
    """A malformed or unsupported wire message."""


@dataclass(frozen=True)
class AssignRequest:
    """A client asking for ``balls`` assignments from its neighborhood."""

    client: int
    balls: int = 1
    id: str | int | None = None

    def __post_init__(self) -> None:
        if self.client < 0:
            raise ProtocolError(f"client must be >= 0; got {self.client}")
        if self.balls < 1:
            raise ProtocolError(f"balls must be >= 1; got {self.balls}")


@dataclass(frozen=True)
class Assigned:
    """Ball accepted by ``server`` after waiting ``latency_rounds`` rounds."""

    server: int
    latency_rounds: int
    outcome = "assigned"


@dataclass(frozen=True)
class Retry:
    """Ball not served; the caller may resubmit (timeout, backpressure…)."""

    reason: str
    outcome = "retry"


@dataclass(frozen=True)
class Dropped:
    """Ball that can never be served (e.g. its client has no servers)."""

    reason: str
    outcome = "dropped"


def decode_request(line: str | bytes) -> dict:
    """Parse one request line into a validated op dict.

    ``assign`` ops come back as ``{"op": "assign", "request":
    AssignRequest}``; control ops (``metrics`` / ``stats`` / ``ping``)
    as ``{"op": ..., "id": ...}``.  Raises :class:`ProtocolError` on
    garbage — the server answers those with an ``error`` line instead of
    dying.
    """
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("request must be a JSON object")
    op = msg.get("op")
    if op == "assign":
        try:
            client = int(msg["client"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError("assign needs an integer 'client'") from None
        try:
            balls = int(msg.get("balls", 1))
        except (TypeError, ValueError):
            raise ProtocolError("'balls' must be an integer") from None
        return {
            "op": "assign",
            "request": AssignRequest(client=client, balls=balls, id=msg.get("id")),
        }
    if op in ("metrics", "stats", "ping"):
        return {"op": op, "id": msg.get("id")}
    raise ProtocolError(f"unknown op {op!r}")


def encode_outcome(outcome: Assigned | Retry | Dropped) -> dict:
    """The outcome's wire fields (merged into a response line)."""
    if isinstance(outcome, Assigned):
        return {
            "outcome": "assigned",
            "server": int(outcome.server),
            "latency_rounds": int(outcome.latency_rounds),
        }
    if isinstance(outcome, (Retry, Dropped)):
        return {"outcome": outcome.outcome, "reason": outcome.reason}
    raise ProtocolError(f"unencodable outcome {outcome!r}")


def encode_response(payload: dict) -> bytes:
    """One response line, newline-terminated, compact separators."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_response(line: str | bytes) -> dict:
    """Parse a response line; ball outcomes get an ``"outcome"`` object.

    Used by the TCP load generator and by tests; ``assigned`` / ``retry``
    / ``dropped`` lines gain a decoded ``outcome_obj`` field.
    """
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON response: {exc}") from None
    if not isinstance(msg, dict):
        raise ProtocolError("response must be a JSON object")
    kind = msg.get("outcome")
    if kind == "assigned":
        msg["outcome_obj"] = Assigned(
            server=int(msg["server"]), latency_rounds=int(msg["latency_rounds"])
        )
    elif kind == "retry":
        msg["outcome_obj"] = Retry(reason=msg.get("reason", ""))
    elif kind == "dropped":
        msg["outcome_obj"] = Dropped(reason=msg.get("reason", ""))
    return msg
