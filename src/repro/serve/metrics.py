"""Counter/gauge/histogram registry for the serving layer.

Prometheus-style in spirit, dependency-free in practice: the service
increments plain Python ints/floats (the whole serving layer runs on
one asyncio event loop, so updates need no locks — "lock-free" by
construction, not by atomics), and two read paths exist:

``render_text()``
    The text exposition format (``# HELP`` / ``# TYPE`` + samples,
    histograms as cumulative ``_bucket{le=...}`` lines) served by the
    TCP front end's ``metrics`` op — scrape-compatible enough for
    eyeballs and for tests.
``snapshot()``
    A plain nested dict (counters, gauges, histogram quantiles), fed to
    registered snapshot hooks every ``snapshot_every`` rounds by the
    service and embedded in load-generator reports.

Histograms use fixed bucket upper bounds chosen at registration;
quantiles come from linear interpolation within the bucket that crosses
the target rank — the standard Prometheus ``histogram_quantile``
estimate, which is exact at bucket edges and never off by more than a
bucket width in between.
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ndjson_snapshot_hook",
]

#: Default latency-style buckets (rounds or seconds — callers choose units).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n

    def render(self) -> list[str]:
        return [f"{self.name} {self.value}"]

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (backlog, burned fraction, …)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def render(self) -> list[str]:
        return [f"{self.name} {self.value}"]

    def snapshot(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum/count and interpolated quantiles."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        # counts[i] pairs with bounds[i]; counts[-1] is the +Inf bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def observe_many(self, values) -> None:
        for v in values:
            self.observe(float(v))

    def quantile(self, q: float) -> float:
        """Prometheus-style interpolated quantile estimate (nan if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}")
        if self.total == 0:
            return math.nan
        rank = q * self.total
        cum = 0
        for i, cnt in enumerate(self.counts):
            prev_cum = cum
            cum += cnt
            if cum >= rank:
                if i == len(self.bounds):  # +Inf bucket: clamp to observed max
                    return self.max
                lo = self.bounds[i - 1] if i else min(self.min, self.bounds[i])
                hi = self.bounds[i]
                if cnt == 0:
                    return hi
                return lo + (hi - lo) * (rank - prev_cum) / cnt
        return self.max  # pragma: no cover - rank <= total always hits above

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else math.nan

    def render(self) -> list[str]:
        lines = []
        cum = 0
        for bound, cnt in zip(self.bounds, self.counts):
            cum += cnt
            lines.append(f'{self.name}_bucket{{le="{bound:g}"}} {cum}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.total}')
        lines.append(f"{self.name}_sum {self.sum}")
        lines.append(f"{self.name}_count {self.total}")
        return lines

    def snapshot(self):
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.total else math.nan,
            "max": self.max if self.total else math.nan,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metrics + snapshot hooks; one per service (or test)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._hooks: list[Callable[[dict], None]] = []

    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as {existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def render_text(self) -> str:
        """Text exposition of every registered metric."""
        out = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                out.append(f"# HELP {name} {m.help}")
            out.append(f"# TYPE {name} {m.kind}")
            out.extend(m.render())
        return "\n".join(out) + "\n"

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every metric (hook / report payload)."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def add_snapshot_hook(self, hook: Callable[[dict], None]) -> None:
        """Register a callable fed each periodic :meth:`snapshot` dict."""
        self._hooks.append(hook)

    def fire_snapshot_hooks(self) -> dict:
        snap = self.snapshot()
        for hook in self._hooks:
            hook(snap)
        return snap


def ndjson_snapshot_hook(path: str, *, clock: Callable[[], float] = time.time):
    """A snapshot hook spooling each snapshot as one NDJSON line.

    Register the returned callable with
    :meth:`MetricsRegistry.add_snapshot_hook`; every periodic snapshot
    appends ``{"seq": k, "time": <unix>, "metrics": {...}}`` to
    ``path``.  The file is opened per line (append mode), so a killed
    process leaves only whole lines behind and a restored one keeps
    appending to the same spool.  Load the result back with
    :func:`repro.analysis.loadstats.load_metric_snapshots`.
    """
    seq = [0]

    def hook(snap: dict) -> None:
        record = {"seq": seq[0], "time": clock(), "metrics": snap}
        seq[0] += 1
        with open(path, "a") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    return hook
