"""Counter/gauge/histogram registry for the serving layer.

Prometheus-style in spirit, dependency-free in practice: the service
increments plain Python ints/floats (the whole serving layer runs on
one asyncio event loop, so updates need no locks — "lock-free" by
construction, not by atomics), and two read paths exist:

``render_text()``
    The text exposition format (``# HELP`` / ``# TYPE`` + samples,
    histograms as cumulative ``_bucket{le=...}`` lines) served by the
    TCP front end's ``metrics`` op — scrape-compatible enough for
    eyeballs and for tests.
``snapshot()``
    A plain nested dict (counters, gauges, histogram quantiles), fed to
    registered snapshot hooks every ``snapshot_every`` rounds by the
    service and embedded in load-generator reports.

Histograms use fixed bucket upper bounds chosen at registration;
quantiles come from linear interpolation within the bucket that crosses
the target rank — the standard Prometheus ``histogram_quantile``
estimate, which is exact at bucket edges and never off by more than a
bucket width in between.  The boundary ranks are exact: ``quantile(0)``
is the observed minimum and ``quantile(1)`` the observed maximum.
Non-finite observations (NaN/±inf) are counted in a separate
``nonfinite`` ledger and never touch the buckets or ``sum`` — a single
poisoned sample cannot make ``mean`` or the rendered exposition
non-finite.

For the multi-process fleet (:mod:`repro.serve.fleet`), every metric
serializes to a plain dict via ``state_dict()`` and registries merge
with :meth:`MetricsRegistry.merge_state`: counters sum, gauges combine
by their declared ``merge`` semantics (``"sum"`` for totals like
backlog, ``"max"`` for high-water marks), and histograms merge
bucket-wise (exact — the merged quantiles equal those of one combined
histogram with the same bounds).
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registry_states",
    "ndjson_snapshot_hook",
]

#: Valid gauge merge semantics for the fleet view.
GAUGE_MERGES = ("sum", "max")

#: Default latency-style buckets (rounds or seconds — callers choose units).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n

    def render(self) -> list[str]:
        return [f"{self.name} {self.value}"]

    def snapshot(self):
        return self.value

    def state_dict(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self.value}

    def merge_state(self, state: dict) -> None:
        self.value += state["value"]


class Gauge:
    """A value that goes up and down (backlog, burned fraction, …).

    ``merge`` declares how per-shard values combine into a fleet view:
    ``"sum"`` (default — backlogs, pending counts) or ``"max"``
    (high-water marks, boolean flags).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", merge: str = "sum") -> None:
        if merge not in GAUGE_MERGES:
            raise ValueError(
                f"gauge {name!r} merge must be one of {GAUGE_MERGES}; got {merge!r}"
            )
        self.name = name
        self.help = help
        self.merge = merge
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def render(self) -> list[str]:
        return [f"{self.name} {self.value}"]

    def snapshot(self):
        return self.value

    def state_dict(self) -> dict:
        return {
            "kind": self.kind, "help": self.help,
            "value": self.value, "merge": self.merge,
        }

    def merge_state(self, state: dict) -> None:
        if self.merge == "max":
            self.value = max(self.value, state["value"])
        else:
            self.value += state["value"]


class Histogram:
    """Fixed-bucket histogram with sum/count and interpolated quantiles."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        # counts[i] pairs with bounds[i]; counts[-1] is the +Inf bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        # NaN/±inf observations: counted here, never in the buckets —
        # bisect on NaN (all comparisons False) would file it in bucket
        # 0 and one `sum += nan` poisons mean/sum forever.
        self.nonfinite = 0

    def observe(self, v: float) -> None:
        if not math.isfinite(v):
            self.nonfinite += 1
            return
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def observe_many(self, values) -> None:
        for v in values:
            self.observe(float(v))

    def quantile(self, q: float) -> float:
        """Prometheus-style interpolated quantile estimate (nan if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q}")
        if self.total == 0:
            return math.nan
        # Boundary ranks are exact, not interpolated: rank 0 lands in
        # the first bucket even when it is empty (the cnt == 0 branch
        # below would return bounds[0] instead of the observed min).
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.total
        cum = 0
        for i, cnt in enumerate(self.counts):
            prev_cum = cum
            cum += cnt
            if cum >= rank:
                if i == len(self.bounds):  # +Inf bucket: clamp to observed max
                    return self.max
                lo = self.bounds[i - 1] if i else min(self.min, self.bounds[i])
                hi = self.bounds[i]
                if cnt == 0:
                    return hi
                return lo + (hi - lo) * (rank - prev_cum) / cnt
        return self.max  # pragma: no cover - rank <= total always hits above

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else math.nan

    def render(self) -> list[str]:
        lines = []
        cum = 0
        for bound, cnt in zip(self.bounds, self.counts):
            cum += cnt
            lines.append(f'{self.name}_bucket{{le="{bound:g}"}} {cum}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.total}')
        lines.append(f"{self.name}_sum {self.sum}")
        lines.append(f"{self.name}_count {self.total}")
        if self.nonfinite:
            lines.append(f"{self.name}_nonfinite {self.nonfinite}")
        return lines

    def snapshot(self):
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.total else math.nan,
            "max": self.max if self.total else math.nan,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "nonfinite": self.nonfinite,
        }

    def state_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "nonfinite": self.nonfinite,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's state in, bucket-wise (exact)."""
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bucket "
                f"bounds {tuple(state['bounds'])} into {self.bounds}"
            )
        for i, cnt in enumerate(state["counts"]):
            self.counts[i] += cnt
        self.total += state["total"]
        self.sum += state["sum"]
        self.min = min(self.min, state["min"])
        self.max = max(self.max, state["max"])
        self.nonfinite += state.get("nonfinite", 0)


class MetricsRegistry:
    """Named metrics + snapshot hooks; one per service (or test)."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._hooks: list[Callable[[dict], None]] = []

    def _register(self, metric):
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as {existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "", merge: str = "sum") -> Gauge:
        return self._register(Gauge(name, help, merge))

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def render_text(self) -> str:
        """Text exposition of every registered metric."""
        out = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            if m.help:
                out.append(f"# HELP {name} {m.help}")
            out.append(f"# TYPE {name} {m.kind}")
            out.extend(m.render())
        return "\n".join(out) + "\n"

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every metric (hook / report payload)."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def add_snapshot_hook(self, hook: Callable[[dict], None]) -> None:
        """Register a callable fed each periodic :meth:`snapshot` dict."""
        self._hooks.append(hook)

    def fire_snapshot_hooks(self) -> dict:
        snap = self.snapshot()
        for hook in self._hooks:
            hook(snap)
        return snap

    # -- fleet merge ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable full state of every metric (the fleet-merge wire
        format — unlike :meth:`snapshot` it keeps raw bucket counts)."""
        return {name: m.state_dict() for name, m in sorted(self._metrics.items())}

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`state_dict` payload in, creating metrics on
        first sight: counters sum, gauges combine by declared ``merge``
        semantics, histograms merge bucket-wise."""
        for name, st in state.items():
            metric = self._metrics.get(name)
            if metric is None:
                kind = st["kind"]
                if kind == "counter":
                    metric = Counter(name, st.get("help", ""))
                    metric.value = st["value"]
                elif kind == "gauge":
                    metric = Gauge(name, st.get("help", ""), st.get("merge", "sum"))
                    metric.value = st["value"]
                elif kind == "histogram":
                    metric = Histogram(name, st.get("help", ""), st["bounds"])
                    metric.merge_state(st)
                else:
                    raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
                self._metrics[name] = metric
                continue
            if metric.kind != st["kind"]:
                raise ValueError(
                    f"metric {name!r} is a {metric.kind} here but a "
                    f"{st['kind']} in the merged state"
                )
            metric.merge_state(st)


def merge_registry_states(states: Iterable[dict]) -> MetricsRegistry:
    """One fleet-view registry from per-shard ``state_dict`` payloads."""
    reg = MetricsRegistry()
    for state in states:
        reg.merge_state(state)
    return reg


def ndjson_snapshot_hook(path: str, *, clock: Callable[[], float] = time.time):
    """A snapshot hook spooling each snapshot as one NDJSON line.

    Register the returned callable with
    :meth:`MetricsRegistry.add_snapshot_hook`; every periodic snapshot
    appends ``{"seq": k, "time": <unix>, "metrics": {...}}`` to
    ``path``.  The file is opened per line (append mode), so a killed
    process leaves only whole lines behind and a restored one keeps
    appending to the same spool.  Load the result back with
    :func:`repro.analysis.loadstats.load_metric_snapshots`.
    """
    seq = [0]

    def hook(snap: dict) -> None:
        record = {"seq": seq[0], "time": clock(), "metrics": snap}
        seq[0] += 1
        with open(path, "a") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    return hook
