"""repro.serve — the live-traffic serving layer.

The dynamic-SAER protocol of :mod:`repro.dynamic`, turned outward: a
server process that accepts assignment requests as they arrive, batches
them into synchronous protocol rounds (every ``tick`` seconds or
``max_batch`` balls, whichever first), and answers each ball with the
server it landed on and how many rounds it waited.  The round step is
the *same* :class:`ServingState` the offline simulator drives — one
implementation, two harnesses — so serving behaviour can never drift
from the E12 tables.

Layers, bottom up:

:mod:`~repro.serve.state`
    :class:`ServingState` — mutable server-side SAER state (cumulative
    counts, burn/recovery clocks, churn-able neighborhoods, alive-ball
    table), with the round step routed through the batched engine's
    kernel gates.
:mod:`~repro.serve.service`
    :class:`SaerService` — asyncio micro-batching loop completing
    per-ball futures; :func:`serve_tcp` — NDJSON-over-TCP front end
    (stdlib only).
:mod:`~repro.serve.protocol`
    Wire types (:class:`AssignRequest`, :class:`Assigned`,
    :class:`Retry`, :class:`Dropped`) and the NDJSON codec.
:mod:`~repro.serve.metrics`
    Dependency-free counter/gauge/histogram registry with Prometheus
    text exposition and periodic snapshot hooks.
:mod:`~repro.serve.loadgen`
    Open-loop load generator replaying arrival traces in-process or
    over TCP, emitting a ``BENCH_serve.json`` report.
:mod:`~repro.serve.router` / :mod:`~repro.serve.fleet`
    Multi-process sharding: :class:`ShardMap` (consistent-hash or
    contiguous server→shard assignment) and :class:`FleetService` —
    a supervisor routing balls sub-degree-proportionally to ``N``
    shard worker processes, each running a full :class:`SaerService`
    over its slice of the servers, with shard-granularity health
    quarantine, checkpoint respawn, and bucket-wise metric merging.

Robustness: pass a :class:`~repro.faults.FaultSchedule` to
``ServingState(faults=...)`` to overlay crashes / stalls / Byzantine
participants; set ``ServeConfig(health=HealthPolicy(...))`` and
``brownout_threshold=`` to turn on the self-healing loop (quarantine +
readmission + load shedding); ``SaerService.checkpoint()`` /
``from_checkpoint()`` survive a kill with identical accounting.

Quickstart (in-process)::

    import asyncio, repro
    from repro.serve import SaerService, ServeConfig, ServingState

    g = repro.graphs.trust_subsets(1024, 1024, 16, seed=1)
    state = ServingState(g, c=2.0, d=4, recovery=8, seed=7, track_tags=True)
    svc = SaerService(state, ServeConfig(tick=0.01, max_batch=512))

    async def demo():
        await svc.start()
        fut = svc.submit(client=17)[0]
        outcome = await fut.wait()          # Assigned(server=..., latency_rounds=...)
        await svc.shutdown()
        return outcome

    print(asyncio.run(demo()))

Or from a shell: ``repro-lb serve --n 4096 --port 7077`` then
``repro-lb loadgen --mode tcp --port 7077``.
"""

from .fleet import FleetConfig, FleetService
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registry_states,
)
from .protocol import (
    Assigned,
    AssignRequest,
    Dropped,
    ProtocolError,
    Retry,
    decode_request,
    decode_response,
    encode_outcome,
    encode_response,
)
from .router import ShardMap, choose_shards, merge_tallies
from .service import BallFuture, SaerService, ServeConfig, serve_tcp
from .state import RoundOutcome, ServingState

__all__ = [
    "ServingState",
    "RoundOutcome",
    "SaerService",
    "ServeConfig",
    "BallFuture",
    "serve_tcp",
    "AssignRequest",
    "Assigned",
    "Retry",
    "Dropped",
    "ProtocolError",
    "decode_request",
    "decode_response",
    "encode_outcome",
    "encode_response",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_registry_states",
    "ShardMap",
    "choose_shards",
    "merge_tallies",
    "FleetConfig",
    "FleetService",
]
