"""Shard routing for the multi-process serving fleet.

:class:`ShardMap` assigns every server id to one of ``n_shards`` shards,
either by **consistent hashing** (a splitmix64 ring with ``vnodes``
virtual nodes per shard — growing the fleet from ``k`` to ``k+1``
shards moves only ≈ ``1/(k+1)`` of the servers, so shard-local state
like burn clocks and checkpoints survives resizes mostly intact) or by
a **contiguous** declared partition (equal index blocks — the right
choice when the graph's community structure already groups servers).

The router side of the fleet uses two derived artifacts:

``subgraph(graph, shard)``
    The client→server CSR restricted to one shard's servers, with
    server ids **re-indexed to shard-local** ``0..n_k-1`` — exactly what
    a worker's :class:`~repro.serve.state.ServingState` needs.  Clients
    keep their global ids (every shard sees every client), so client-
    kind faults and arrival traces need no translation.

``sub_degrees(graph)``
    The ``(n_clients, n_shards)`` matrix of per-client neighborhood
    sizes within each shard.  :func:`choose_shards` picks a shard per
    ball with probability proportional to the owner's sub-degree in
    that shard; the worker then draws uniformly inside the shard's
    slice of the neighborhood, so the *composed* destination law is
    uniform over the client's full neighborhood — the same Phase-1
    marginal as the single-process path.

Accounting invariants (pinned by ``tests/test_serve_fleet.py``): a
client isolated in the full graph is dropped at the router exactly as
``admit_balls`` would drop it, every routed ball lands in exactly one
shard, and the per-shard tallies sum to the single-process totals on a
fully drained trace.
"""

from __future__ import annotations

import numpy as np

from ..errors import ServeError
from ..graphs.bipartite import BipartiteGraph

__all__ = ["ShardMap", "choose_shards", "merge_tallies"]

STRATEGIES = ("hash", "contiguous")

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    z = x.astype(np.uint64, copy=True)
    z += np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class ShardMap:
    """A deterministic server-id → shard assignment (picklable-by-args).

    Both sides of the fleet build the *same* map from the same
    ``(n_servers, n_shards, strategy, seed, vnodes)`` tuple — the
    router to split balls, each worker to carve out its own subgraph —
    so only those five scalars ever travel between processes.
    """

    def __init__(
        self,
        n_servers: int,
        n_shards: int,
        *,
        strategy: str = "hash",
        seed: int = 0,
        vnodes: int = 64,
    ) -> None:
        if n_shards < 1:
            raise ServeError(f"n_shards must be >= 1; got {n_shards}")
        if n_servers < 0:
            raise ServeError(f"n_servers must be >= 0; got {n_servers}")
        if strategy not in STRATEGIES:
            raise ServeError(
                f"unknown shard strategy {strategy!r}; known: {STRATEGIES}"
            )
        if vnodes < 1:
            raise ServeError(f"vnodes must be >= 1; got {vnodes}")
        self.n_servers = int(n_servers)
        self.n_shards = int(n_shards)
        self.strategy = strategy
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        if strategy == "contiguous" or n_shards == 1:
            ids = np.arange(self.n_servers, dtype=np.int64)
            self.shard_of = (ids * n_shards) // max(self.n_servers, 1)
        else:
            self.shard_of = self._hash_assign()
        # Local (within-shard) index of each server, in ascending global
        # order — so a shard's local ids enumerate its sorted global ids.
        self.local_of = np.zeros(self.n_servers, dtype=np.int64)
        self.counts = np.bincount(self.shard_of, minlength=n_shards).astype(np.int64)
        for k in range(n_shards):
            members = np.flatnonzero(self.shard_of == k)
            self.local_of[members] = np.arange(members.size, dtype=np.int64)

    def _hash_assign(self) -> np.ndarray:
        # Ring positions: one point per (shard, vnode).  Point ids are a
        # pure function of (shard, vnode) — independent of n_shards — so
        # growing the fleet only *adds* points, never moves existing
        # ones: that is the consistent-hashing stability property.
        mix = np.uint64((self.seed * _GOLDEN + 1) & _MASK64)
        point_ids = np.arange(self.n_shards * self.vnodes, dtype=np.uint64)
        pos = _splitmix64(point_ids ^ mix)
        order = np.argsort(pos, kind="stable")
        ring_pos = pos[order]
        ring_shard = (point_ids // np.uint64(self.vnodes)).astype(np.int64)[order]
        # Servers hash onto the same ring (a different stream via the
        # high bit so server 3 never collides with point 3 by identity).
        server_ids = np.arange(self.n_servers, dtype=np.uint64) | np.uint64(1 << 63)
        spos = _splitmix64(server_ids ^ mix)
        idx = np.searchsorted(ring_pos, spos, side="right") % ring_pos.size
        return ring_shard[idx]

    # -- queries -------------------------------------------------------------

    def servers_of(self, shard: int) -> np.ndarray:
        """Global server ids of ``shard``, ascending (= local id order)."""
        self._check_shard(shard)
        return np.flatnonzero(self.shard_of == shard).astype(np.int64)

    def _check_shard(self, shard: int) -> None:
        if not (0 <= shard < self.n_shards):
            raise ServeError(
                f"shard must be in [0, {self.n_shards}); got {shard}"
            )

    def sub_degrees(self, graph: BipartiteGraph) -> np.ndarray:
        """Per-client neighborhood size within each shard: ``(n_clients,
        n_shards)`` int64; rows sum to the client's full degree."""
        self._check_graph(graph)
        indptr = graph.client_indptr
        indices = graph.client_indices
        degs = np.diff(indptr)
        edge_client = np.repeat(
            np.arange(graph.n_clients, dtype=np.int64), degs
        )
        edge_shard = self.shard_of[indices]
        flat = np.bincount(
            edge_client * self.n_shards + edge_shard,
            minlength=graph.n_clients * self.n_shards,
        )
        return flat.reshape(graph.n_clients, self.n_shards).astype(np.int64)

    def subgraph(self, graph: BipartiteGraph, shard: int) -> tuple[BipartiteGraph, np.ndarray]:
        """``(local_graph, global_server_ids)`` for one shard.

        The local graph keeps all clients and re-indexes the shard's
        servers to ``0..n_k-1``; ``global_server_ids[local]`` maps back.
        Rows stay strictly sorted (local order follows global order), so
        the cheap ``from_csr`` path applies.
        """
        self._check_graph(graph)
        self._check_shard(shard)
        indptr = graph.client_indptr
        indices = graph.client_indices
        keep = self.shard_of[indices] == shard
        # Prefix-sum of kept edges gathered at the old row boundaries
        # gives the new indptr in one pass.
        cs = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(keep, out=cs[1:])
        new_indptr = cs[indptr]
        new_indices = self.local_of[indices[keep]]
        members = np.flatnonzero(self.shard_of == shard).astype(np.int64)
        sub = BipartiteGraph.from_csr(
            graph.n_clients,
            members.size,
            new_indptr,
            new_indices,
            name=f"{graph.name}/shard{shard}of{self.n_shards}",
            validate=False,
        )
        return sub, members

    def _check_graph(self, graph: BipartiteGraph) -> None:
        if graph.n_servers != self.n_servers:
            raise ServeError(
                f"graph has {graph.n_servers} servers but the shard map "
                f"was built for {self.n_servers}"
            )


def choose_shards(
    owners: np.ndarray, u: np.ndarray, cum_sub_deg: np.ndarray
) -> np.ndarray:
    """Pick a shard per ball, sub-degree-proportionally, from one uniform.

    ``cum_sub_deg`` is the row-cumulative ``(n_clients, n_shards)``
    sub-degree matrix (live shards only — zero dead columns *before*
    cumsum).  A ball at client ``v`` goes to shard ``k`` with
    probability ``sub_deg[v, k] / sum_live(sub_deg[v])``, which composes
    with the worker's uniform in-shard draw to the single-process
    uniform-over-neighborhood marginal.

    Balls whose owner has zero live sub-degree get shard ``n_shards``
    (out of range) — callers must resolve those as dropped/unavailable
    before dispatch.
    """
    rows = cum_sub_deg[owners]
    tot = rows[:, -1]
    r = np.minimum((u * tot).astype(np.int64), np.maximum(tot - 1, 0))
    shard = np.sum(rows <= r[:, None], axis=1, dtype=np.int64)
    shard[tot == 0] = cum_sub_deg.shape[1]
    return shard


def merge_tallies(per_shard: list[dict]) -> dict:
    """Sum per-shard numeric tallies key-wise (missing keys count 0)."""
    out: dict = {}
    for tally in per_shard:
        for key, val in tally.items():
            out[key] = out.get(key, 0) + val
    return out
