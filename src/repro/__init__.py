"""repro — Parallel Load Balancing on Constrained Client-Server Topologies.

A production-quality reproduction of Clementi, Natale & Ziccardi (SPAA
2020): the **SAER** parallel load-balancing protocol, its sibling
**RAES** (Becchetti et al., SODA 2020), the bipartite client-server
substrates they run on, sequential and parallel baselines, the theory
module implementing the paper's recurrences and bounds, and a Monte
Carlo experiment harness that regenerates every quantitative claim of
the paper (see DESIGN.md §5 and EXPERIMENTS.md).

Quickstart::

    import repro

    g = repro.graphs.random_regular_bipartite(n=1024, degree=64, seed=1)
    res = repro.run_saer(g, c=8.0, d=2, seed=2)
    assert res.completed and res.max_load <= 16
    print(res.rounds, res.work_per_client)
"""

from . import (
    agents,
    analysis,
    baselines,
    batch,
    core,
    dynamic,
    graphs,
    parallel,
    plan,
    serve,
    theory,
)
from .batch import BatchResult, run_raes_batched, run_saer_batched, run_trials_batched
from .core import (
    CoupledResult,
    ProtocolParams,
    RaesPolicy,
    RunOptions,
    RunResult,
    SaerPolicy,
    Trace,
    TraceLevel,
    run_coupled,
    run_protocol,
    run_raes,
    run_saer,
)
from .errors import (
    ExperimentError,
    GraphConstructionError,
    GraphValidationError,
    NonTerminationError,
    PlanError,
    ProtocolConfigError,
    ReproError,
    TapeExhaustedError,
)
from .graphs import BipartiteGraph
from .plan import (
    BackendSpec,
    ExecSpec,
    GraphSpec,
    ResultSpec,
    RunPlan,
    SeedSpec,
    WorkSpec,
    execute,
)
from .rng import RandomTape, make_rng, spawn_rngs, spawn_seeds

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "graphs",
    "core",
    "batch",
    "agents",
    "baselines",
    "theory",
    "parallel",
    "analysis",
    "dynamic",
    "plan",
    "serve",
    # execution-plan layer
    "RunPlan",
    "WorkSpec",
    "SeedSpec",
    "BackendSpec",
    "GraphSpec",
    "ExecSpec",
    "ResultSpec",
    "execute",
    # protocol API
    "run_saer",
    "run_raes",
    "run_protocol",
    "run_coupled",
    # batched (trial-vectorized) API
    "run_trials_batched",
    "run_saer_batched",
    "run_raes_batched",
    "BatchResult",
    "ProtocolParams",
    "RunOptions",
    "RunResult",
    "CoupledResult",
    "SaerPolicy",
    "RaesPolicy",
    "Trace",
    "TraceLevel",
    # substrate API
    "BipartiteGraph",
    "RandomTape",
    "make_rng",
    "spawn_seeds",
    "spawn_rngs",
    # errors
    "ReproError",
    "GraphConstructionError",
    "GraphValidationError",
    "ProtocolConfigError",
    "NonTerminationError",
    "TapeExhaustedError",
    "ExperimentError",
    "PlanError",
]
