"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are left
alone).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphConstructionError",
    "GraphValidationError",
    "ProtocolConfigError",
    "NonTerminationError",
    "TapeExhaustedError",
    "ExperimentError",
    "PlanError",
    "ServeError",
    "FaultSpecError",
    "CheckpointError",
    "DurabilityError",
    "SpoolCorruptError",
    "ResumeMismatchError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphConstructionError(ReproError):
    """A graph generator could not realize the requested parameters.

    Raised, e.g., when a degree sequence is infeasible (``n * d_c`` not
    divisible appropriately for a biregular graph) or a rejection-sampling
    generator exceeded its retry budget.
    """


class GraphValidationError(ReproError):
    """A :class:`~repro.graphs.bipartite.BipartiteGraph` invariant failed.

    Raised by constructors and validators when CSR arrays are
    inconsistent, indices are out of range, or a protocol precondition
    (e.g. "every client has at least one neighbor") is violated.
    """


class ProtocolConfigError(ReproError):
    """Invalid protocol parameters (e.g. ``c < 1``, ``d < 1``)."""


class NonTerminationError(ReproError):
    """A protocol run hit its round cap before all balls were assigned.

    Carries the partial :class:`~repro.core.results.RunResult` in
    :attr:`result` so callers can inspect how far the process got.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class TapeExhaustedError(ReproError):
    """A :class:`~repro.rng.RandomTape` ran out of pre-drawn values."""


class ExperimentError(ReproError):
    """An experiment registry lookup or runner configuration failed."""


class PlanError(ReproError):
    """An execution plan (:mod:`repro.plan`) is invalid or inconsistent.

    Raised at :func:`repro.plan.execute` time (or by spec validation)
    when a :class:`~repro.plan.RunPlan` combines incompatible axes —
    e.g. a batched backend without a batched work function, a cached
    graph mode without a cache directory, or direct seed delivery
    without a pinned topology.
    """


class ServeError(ReproError, ValueError):
    """Invalid serving-layer configuration or request (:mod:`repro.serve`).

    Subclasses ``ValueError`` too: the serve layer historically raised
    bare ``ValueError`` (and the TCP front end answers ``except
    ValueError`` with an error line), so existing callers and handlers
    keep working while new code can catch :class:`ReproError`.
    """


class FaultSpecError(ReproError, ValueError):
    """An invalid fault-injection declaration (:mod:`repro.faults`).

    Raised when a :class:`~repro.faults.FaultSpec` is out of range
    (fraction outside [0, 1], empty window, bad duty cycle) or a
    schedule is applied to a layer that cannot express its fault kinds
    (e.g. client-side faults in the static batch engine).
    """


class CheckpointError(ReproError):
    """A serving-state checkpoint could not be written, read, or applied.

    Raised by :meth:`repro.serve.ServingState.save` / ``load`` /
    ``from_checkpoint`` on I/O failures, version mismatches, or
    payloads that fail basic integrity checks.
    """


class DurabilityError(ReproError):
    """Base of the durable-execution failures (:mod:`repro.durable`).

    The offline-fleet sibling of the PR-7 serving-layer
    :class:`CheckpointError` taxonomy: anything that goes wrong with
    the on-disk result spool, its journal, or the crash-supervised
    pool derives from here.
    """


class SpoolCorruptError(DurabilityError):
    """An on-disk result-spool artifact failed an integrity check.

    Raised when a per-grid-point block file is missing, truncated, or
    does not match the checksum its journal entry recorded, or when a
    journal header is unreadable where one is required.  During a
    resume, corrupt *blocks* are not fatal — the affected grid point is
    simply re-run — so this surfaces only where the caller explicitly
    reads a block (:func:`repro.durable.read_block`) or assembles a
    spool whose journal promises data that cannot be delivered.
    """


class ResumeMismatchError(DurabilityError):
    """A resume directory belongs to a different plan.

    The journal header records a fingerprint of the canonicalized
    :class:`~repro.plan.RunPlan` (points, trials, seed lineage,
    backend, graph provisioning — every axis that can change result
    *bits*).  Resuming with a plan whose fingerprint differs would
    silently splice rows from two different computations into one
    table; this error refuses that.
    """


class WorkerCrashError(DurabilityError):
    """A pool task kept killing its worker (or timing out) and retries
    are exhausted, in a context where quarantining it as a structured
    failure row was not requested (plain :func:`~repro.parallel.pool.
    map_parallel` semantics: raise rather than return partial results).
    """
