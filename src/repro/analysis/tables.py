"""ASCII table formatting and CSV export for experiment records.

The benchmark harness prints its regenerated "paper tables" through
:func:`format_table`, so every bench's stdout is a self-contained,
paste-able result table.
"""

from __future__ import annotations

import csv
import io
import math
import os
from typing import Mapping, Sequence

__all__ = ["format_table", "write_csv", "records_to_csv"]


def _fmt_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render records as an aligned ASCII table.

    ``columns`` selects and orders the fields (default: keys of the
    first row, in insertion order).  Missing values render as ``-``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_fmt_cell(r.get(c)) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(" | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in cells)
    out = io.StringIO()
    if title:
        out.write(title + "\n")
        out.write("=" * len(header) + "\n")
    out.write(header + "\n")
    out.write(sep + "\n")
    out.write(body)
    return out.getvalue()


def records_to_csv(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Records as a CSV string (same column logic as :func:`format_table`)."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for r in rows:
        writer.writerow({c: r.get(c) for c in cols})
    return buf.getvalue()


def write_csv(
    rows: Sequence[Mapping],
    path: str | os.PathLike,
    columns: Sequence[str] | None = None,
) -> None:
    """Write records to a CSV file."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(records_to_csv(rows, columns))
