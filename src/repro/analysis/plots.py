"""Terminal-friendly ASCII plots for traces and load distributions.

The execution environment has no plotting stack; these render the
experiment series well enough to eyeball shapes in bench output and
examples (sparklines for time series, bar histograms for loads).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["sparkline", "histogram", "series_panel"]

_BLOCKS = " .:-=+*#%@"


def sparkline(series: Iterable[float], width: int = 60) -> str:
    """One-line density sparkline of a non-negative series.

    Values are down-sampled to ``width`` points and mapped onto a
    10-level character ramp scaled by the series max.
    """
    arr = np.asarray(list(series), dtype=np.float64)
    if arr.size == 0:
        return ""
    if np.any(arr < 0):
        raise ValueError("sparkline expects non-negative values")
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).astype(np.int64)
        arr = arr[idx]
    top = arr.max()
    if top == 0:
        return " " * arr.size
    levels = np.minimum((arr / top * (len(_BLOCKS) - 1)).astype(np.int64), len(_BLOCKS) - 1)
    return "".join(_BLOCKS[v] for v in levels)


def histogram(
    values: Iterable[float],
    bins: int | Sequence[float] = 10,
    width: int = 40,
    label: str = "count",
) -> str:
    """Multi-line horizontal bar histogram.

    Integer-valued data with a small range (server loads!) gets one bin
    per integer automatically when ``bins`` is an int larger than the
    range.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "(no data)"
    if isinstance(bins, int):
        lo, hi = arr.min(), arr.max()
        if float(lo).is_integer() and float(hi).is_integer() and hi - lo + 1 <= bins:
            edges = np.arange(lo - 0.5, hi + 1.5)
        else:
            edges = np.linspace(lo, hi, bins + 1)
    else:
        edges = np.asarray(bins, dtype=np.float64)
    counts, edges = np.histogram(arr, bins=edges)
    top = counts.max() or 1
    lines = []
    for i, cnt in enumerate(counts):
        left, right = edges[i], edges[i + 1]
        mid = (left + right) / 2.0
        tag = f"{mid:8.4g}" if not float(mid).is_integer() else f"{int(mid):8d}"
        bar = "#" * int(round(cnt / top * width))
        lines.append(f"{tag} | {bar} {cnt}")
    return "\n".join(lines) + f"\n{'':8s} +-- {label}"


def series_panel(named_series: dict[str, Iterable[float]], width: int = 60) -> str:
    """Stacked labelled sparklines, one per named series."""
    if not named_series:
        return "(no series)"
    pad = max(len(k) for k in named_series)
    out = []
    for name, series in named_series.items():
        arr = list(series)
        peak = max(arr) if arr else 0
        out.append(f"{name.rjust(pad)} |{sparkline(arr, width)}| max={peak:g}")
    return "\n".join(out)
