"""Fitting, statistics and table formatting for experiment output."""

from .fitting import FitResult, fit_linear, fit_log2, fit_powerlaw
from .loadstats import (
    LoadStats,
    load_metric_snapshots,
    load_stats,
    metric_trajectory,
)
from .plots import histogram, series_panel, sparkline
from .stats import bootstrap_ci, mean_ci, wilson_interval
from .tables import format_table, records_to_csv, write_csv

__all__ = [
    "FitResult",
    "fit_log2",
    "fit_linear",
    "fit_powerlaw",
    "mean_ci",
    "bootstrap_ci",
    "wilson_interval",
    "format_table",
    "write_csv",
    "records_to_csv",
    "LoadStats",
    "load_stats",
    "load_metric_snapshots",
    "metric_trajectory",
    "sparkline",
    "histogram",
    "series_panel",
]
