"""Least-squares fits for the scaling shapes the experiments assert.

* E1 asserts completion time is logarithmic → :func:`fit_log2`
  (``y = a + b·log₂ n``) should explain the data (high R²) and a
  power-law fit should find an exponent near 0.
* E2 asserts work is linear → :func:`fit_powerlaw` on (n, work) should
  find exponent ≈ 1, equivalently work/n flat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["FitResult", "fit_log2", "fit_linear", "fit_powerlaw"]


@dataclass(frozen=True)
class FitResult:
    """A 2-parameter least-squares fit ``y ≈ intercept + slope·g(x)``.

    ``model`` names the transform ``g``; ``r2`` is the coefficient of
    determination in the (possibly transformed) fitting space.
    """

    model: str
    intercept: float
    slope: float
    r2: float

    def predict(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self.model == "log2":
            g = np.log2(x)
        elif self.model == "linear":
            g = x
        elif self.model == "powerlaw":
            # fit was log y = intercept + slope * log x
            return np.exp(self.intercept) * x**self.slope
        else:  # pragma: no cover - guarded by constructors
            raise ValueError(f"unknown model {self.model}")
        return self.intercept + self.slope * g

    def describe(self) -> str:
        if self.model == "log2":
            return f"y = {self.intercept:.3f} + {self.slope:.3f}·log2(n)   (R²={self.r2:.3f})"
        if self.model == "linear":
            return f"y = {self.intercept:.3f} + {self.slope:.3f}·n   (R²={self.r2:.3f})"
        return f"y = {math.exp(self.intercept):.3g}·n^{self.slope:.3f}   (R²={self.r2:.3f})"


def _ls(g: np.ndarray, y: np.ndarray, model: str) -> FitResult:
    if g.size != y.size or g.size < 2:
        raise ValueError("need at least two (x, y) points")
    A = np.column_stack([np.ones_like(g), g])
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    pred = A @ coef
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return FitResult(model=model, intercept=float(coef[0]), slope=float(coef[1]), r2=r2)


def fit_log2(x, y) -> FitResult:
    """Fit ``y = a + b·log₂ x`` (the Theorem-1 completion-time shape)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(x <= 0):
        raise ValueError("x must be positive for a log fit")
    return _ls(np.log2(x), y, "log2")


def fit_linear(x, y) -> FitResult:
    """Fit ``y = a + b·x`` (the Θ(n) work shape)."""
    return _ls(
        np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64), "linear"
    )


def fit_powerlaw(x, y) -> FitResult:
    """Fit ``y = C·x^b`` by least squares in log-log space.

    The exponent ``slope`` is the scaling diagnostic: ≈0 for
    logarithmic-or-flat quantities, ≈1 for linear ones.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("x and y must be positive for a power-law fit")
    return _ls(np.log(x), np.log(y), "powerlaw")
