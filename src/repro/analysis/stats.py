"""Interval estimates used by experiment tables and statistical tests."""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np

from ..rng import make_rng

__all__ = ["mean_ci", "bootstrap_ci", "wilson_interval"]


def mean_ci(values: Iterable[float], confidence: float = 0.95) -> tuple[float, float, float]:
    """(mean, lo, hi) normal-approximation CI for the mean."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return (math.nan, math.nan, math.nan)
    m = float(arr.mean())
    if arr.size == 1:
        return (m, m, m)
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return (m, m - half, m + half)


def bootstrap_ci(
    values: Iterable[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed=None,
) -> tuple[float, float, float]:
    """(stat, lo, hi) percentile-bootstrap CI for an arbitrary statistic.

    Used for medians/quantiles of completion time where the normal
    approximation is inappropriate.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return (math.nan, math.nan, math.nan)
    rng = make_rng(seed)
    stat = float(statistic(arr))
    if arr.size == 1:
        return (stat, stat, stat)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    boot = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(boot, [alpha, 1.0 - alpha])
    return (stat, float(lo), float(hi))


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float, float]:
    """(rate, lo, hi) Wilson score interval for a binomial proportion.

    The right tool for completion/failure *rates* (E6, E7), which sit
    near 0 or 1 where the normal interval is useless.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError("need 0 <= successes <= trials")
    if trials == 0:
        return (math.nan, 0.0, 1.0)
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return (p, max(0.0, center - half), min(1.0, center + half))
