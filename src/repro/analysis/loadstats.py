"""Load-distribution statistics for comparing allocation quality.

The paper's quality measure is the max load, but comparing allocators
(E9, ablations) benefits from distributional views: imbalance ratios,
Gini coefficient, tail quantiles, and the fraction of servers at the
cap.

Also home to the reader side of the serving layer's metric spool:
:func:`load_metric_snapshots` parses the NDJSON file written by
:func:`repro.serve.metrics.ndjson_snapshot_hook`, and
:func:`metric_trajectory` pulls one metric's time series out of it —
the raw material for burned-fraction / backlog recovery plots after a
chaos run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LoadStats",
    "load_stats",
    "load_metric_snapshots",
    "metric_trajectory",
]


@dataclass(frozen=True)
class LoadStats:
    """Summary of a final server-load vector."""

    n_servers: int
    total_load: int
    max_load: int
    mean_load: float
    nonzero_servers: int
    p50: float
    p95: float
    p99: float
    imbalance: float  # max / mean (1.0 = perfectly even), inf if mean 0
    gini: float  # 0 = perfectly even, -> 1 = concentrated
    at_capacity_fraction: float  # servers with load == cap (nan if cap unknown)

    def as_dict(self) -> dict:
        return {
            "max_load": self.max_load,
            "mean_load": round(self.mean_load, 3),
            "p95": self.p95,
            "p99": self.p99,
            "imbalance": round(self.imbalance, 3) if np.isfinite(self.imbalance) else None,
            "gini": round(self.gini, 4),
            "at_capacity_frac": round(self.at_capacity_fraction, 4)
            if not np.isnan(self.at_capacity_fraction)
            else None,
        }


def load_stats(loads, capacity: int | None = None) -> LoadStats:
    """Compute :class:`LoadStats` from a per-server load vector."""
    arr = np.asarray(loads, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("loads must be one-dimensional")
    if arr.size and arr.min() < 0:
        raise ValueError("loads must be non-negative")
    n = int(arr.size)
    total = int(arr.sum())
    mean = total / n if n else 0.0
    mx = int(arr.max()) if n else 0
    # Gini via the sorted-rank identity; 0 for empty/all-zero.
    if n and total:
        srt = np.sort(arr).astype(np.float64)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        gini = float((2.0 * np.sum(ranks * srt)) / (n * total) - (n + 1.0) / n)
    else:
        gini = 0.0
    return LoadStats(
        n_servers=n,
        total_load=total,
        max_load=mx,
        mean_load=mean,
        nonzero_servers=int(np.count_nonzero(arr)),
        p50=float(np.median(arr)) if n else 0.0,
        p95=float(np.quantile(arr, 0.95)) if n else 0.0,
        p99=float(np.quantile(arr, 0.99)) if n else 0.0,
        imbalance=(mx / mean) if mean > 0 else float("inf") if mx else 1.0,
        gini=gini,
        at_capacity_fraction=float(np.mean(arr == capacity)) if (n and capacity is not None) else float("nan"),
    )


def load_metric_snapshots(path: str) -> list[dict]:
    """Parse a metric spool written by ``ndjson_snapshot_hook``.

    Returns the snapshot records (``{"seq", "time", "metrics"}``) in
    file order.  A truncated final line — the signature of a process
    killed mid-write — is skipped rather than fatal, so the spool of a
    crashed service still loads.
    """
    records: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from a killed writer
            if isinstance(rec, dict) and "metrics" in rec:
                records.append(rec)
    return records


def metric_trajectory(snapshots: list[dict], name: str, field: str | None = None):
    """One metric's time series from loaded snapshots.

    Returns ``(seq, values)`` float arrays.  Counters and gauges are
    scalar; for histograms pass ``field`` (``"p95"``, ``"mean"``, …).
    Snapshots missing the metric are skipped, so a spool that spans a
    service restart (new registry, metrics appear later) still works.
    """
    seqs: list[float] = []
    vals: list[float] = []
    for rec in snapshots:
        m = rec.get("metrics", {})
        if name not in m:
            continue
        v = m[name]
        if isinstance(v, dict):
            if field is None:
                raise ValueError(
                    f"metric {name!r} is a histogram; pass field= (e.g. 'p95')"
                )
            v = v.get(field, float("nan"))
        seqs.append(float(rec.get("seq", len(seqs))))
        vals.append(float(v))
    return np.asarray(seqs), np.asarray(vals)
