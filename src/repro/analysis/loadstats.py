"""Load-distribution statistics for comparing allocation quality.

The paper's quality measure is the max load, but comparing allocators
(E9, ablations) benefits from distributional views: imbalance ratios,
Gini coefficient, tail quantiles, and the fraction of servers at the
cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadStats", "load_stats"]


@dataclass(frozen=True)
class LoadStats:
    """Summary of a final server-load vector."""

    n_servers: int
    total_load: int
    max_load: int
    mean_load: float
    nonzero_servers: int
    p50: float
    p95: float
    p99: float
    imbalance: float  # max / mean (1.0 = perfectly even), inf if mean 0
    gini: float  # 0 = perfectly even, -> 1 = concentrated
    at_capacity_fraction: float  # servers with load == cap (nan if cap unknown)

    def as_dict(self) -> dict:
        return {
            "max_load": self.max_load,
            "mean_load": round(self.mean_load, 3),
            "p95": self.p95,
            "p99": self.p99,
            "imbalance": round(self.imbalance, 3) if np.isfinite(self.imbalance) else None,
            "gini": round(self.gini, 4),
            "at_capacity_frac": round(self.at_capacity_fraction, 4)
            if not np.isnan(self.at_capacity_fraction)
            else None,
        }


def load_stats(loads, capacity: int | None = None) -> LoadStats:
    """Compute :class:`LoadStats` from a per-server load vector."""
    arr = np.asarray(loads, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("loads must be one-dimensional")
    if arr.size and arr.min() < 0:
        raise ValueError("loads must be non-negative")
    n = int(arr.size)
    total = int(arr.sum())
    mean = total / n if n else 0.0
    mx = int(arr.max()) if n else 0
    # Gini via the sorted-rank identity; 0 for empty/all-zero.
    if n and total:
        srt = np.sort(arr).astype(np.float64)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        gini = float((2.0 * np.sum(ranks * srt)) / (n * total) - (n + 1.0) / n)
    else:
        gini = 0.0
    return LoadStats(
        n_servers=n,
        total_load=total,
        max_load=mx,
        mean_load=mean,
        nonzero_servers=int(np.count_nonzero(arr)),
        p50=float(np.median(arr)) if n else 0.0,
        p95=float(np.quantile(arr, 0.95)) if n else 0.0,
        p99=float(np.quantile(arr, 0.99)) if n else 0.0,
        imbalance=(mx / mean) if mean > 0 else float("inf") if mx else 1.0,
        gini=gini,
        at_capacity_fraction=float(np.mean(arr == capacity)) if (n and capacity is not None) else float("nan"),
    )
